"""Unit tests for the KRISC two-pass assembler."""

import pytest

from repro.isa import (AssemblyError, Cond, DATA_BASE, Opcode, TEXT_BASE,
                       assemble, disassemble)


def first_instructions(source, count=None):
    program = assemble(source)
    instrs = list(program.iter_instructions())
    return instrs if count is None else instrs[:count]


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("MOVI R0, #5\n")
        (instr,) = program.iter_instructions()
        assert instr.opcode is Opcode.MOVI
        assert instr.rd == 0
        assert instr.imm == 5
        assert instr.address == TEXT_BASE

    def test_addresses_are_sequential(self):
        program = assemble("NOP\nNOP\nHALT\n")
        addresses = [i.address for i in program.iter_instructions()]
        assert addresses == [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]

    def test_comments_and_blank_lines(self):
        program = assemble("""
        ; full-line comment
        MOVI R0, #1   // trailing comment
        NOP           ; another
        """)
        assert len(list(program.iter_instructions())) == 2

    def test_case_insensitive_mnemonics(self):
        (instr,) = first_instructions("movi r0, #5\n")
        assert instr.opcode is Opcode.MOVI

    def test_hex_and_negative_immediates(self):
        instrs = first_instructions("MOVI R0, #0x10\nMOVI R1, #-7\n")
        assert instrs[0].imm == 16
        assert instrs[1].imm == -7

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("FROB R0, R1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("ADD R0, R1\n")


class TestLabelsAndBranches:
    def test_backward_branch(self):
        program = assemble("""
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BNE loop
            HALT
        """)
        instrs = list(program.iter_instructions())
        bne = instrs[2]
        assert bne.opcode is Opcode.BCC
        assert bne.cond is Cond.NE
        assert bne.branch_target() == program.symbols["loop"]

    def test_forward_branch(self):
        program = assemble("""
            B end
            NOP
        end:
            HALT
        """)
        b = next(program.iter_instructions())
        assert b.branch_target() == program.symbols["end"]

    def test_label_on_same_line(self):
        program = assemble("start: NOP\n B start\n")
        assert program.symbols["start"] == TEXT_BASE

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nNOP\nx:\nNOP\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError):
            assemble("B nowhere\n")

    def test_call_and_ret(self):
        program = assemble("""
        main:
            BL helper
            HALT
        helper:
            RET
        """)
        instrs = list(program.iter_instructions())
        assert instrs[0].opcode is Opcode.BL
        assert instrs[0].branch_target() == program.symbols["helper"]
        assert program.entry == program.symbols["main"]

    def test_all_conditional_mnemonics(self):
        names = ["BEQ", "BNE", "BLT", "BGE", "BGT", "BLE", "BLO", "BHS",
                 "BHI", "BLS"]
        body = "t:\n" + "\n".join(f"{name} t" for name in names)
        program = assemble(body)
        conds = [i.cond for i in program.iter_instructions()]
        assert conds == [Cond.EQ, Cond.NE, Cond.LT, Cond.GE, Cond.GT,
                         Cond.LE, Cond.LO, Cond.HS, Cond.HI, Cond.LS]


class TestMemoryOperands:
    def test_ldr_with_offset(self):
        (instr,) = first_instructions("LDR R0, [SP, #8]\n")
        assert instr.opcode is Opcode.LDR
        assert instr.rs1 == 13
        assert instr.imm == 8

    def test_ldr_without_offset(self):
        (instr,) = first_instructions("LDR R0, [R1]\n")
        assert instr.imm == 0

    def test_indexed_load_selects_ldrx(self):
        (instr,) = first_instructions("LDR R0, [R1, R2]\n")
        assert instr.opcode is Opcode.LDRX
        assert (instr.rs1, instr.rs2) == (1, 2)

    def test_indexed_store_selects_strx(self):
        (instr,) = first_instructions("STR R0, [R1, R2]\n")
        assert instr.opcode is Opcode.STRX
        assert instr.rd == 0

    def test_store_with_offset(self):
        (instr,) = first_instructions("STR R3, [SP, #-4]\n")
        assert instr.opcode is Opcode.STR
        assert instr.rs2 == 3
        assert instr.imm == -4

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("LDR R0, [R1\n")


class TestRegisterLists:
    def test_push_list(self):
        (instr,) = first_instructions("PUSH {R4, R5, LR}\n")
        assert instr.opcode is Opcode.PUSH
        assert instr.reglist == (4, 5, 14)

    def test_register_range(self):
        (instr,) = first_instructions("POP {R4-R7}\n")
        assert instr.reglist == (4, 5, 6, 7)

    def test_mixed_range_and_singles(self):
        (instr,) = first_instructions("PUSH {R4-R6, R11, LR}\n")
        assert instr.reglist == (4, 5, 6, 11, 14)

    def test_empty_list_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH {}\n")


class TestDataSection:
    def test_word_directive(self):
        program = assemble("""
        .data
        table: .word 1, 2, 0x30
        """)
        data = program.section(".data")
        assert data.base == DATA_BASE
        assert data.data == (1).to_bytes(4, "little") + \
            (2).to_bytes(4, "little") + (0x30).to_bytes(4, "little")
        assert program.symbols["table"] == DATA_BASE

    def test_space_directive(self):
        program = assemble("""
        .data
        a: .word 7
        buf: .space 12
        b: .word 9
        """)
        assert program.symbols["buf"] == DATA_BASE + 4
        assert program.symbols["b"] == DATA_BASE + 16

    def test_word_with_symbol_value(self):
        program = assemble("""
        .text
        main: HALT
        .data
        ptr: .word main
        """)
        data = program.section(".data")
        assert int.from_bytes(data.data[:4], "little") == \
            program.symbols["main"]

    def test_equ(self):
        program = assemble("""
        .equ SIZE, 32
        .data
        buf: .space 32
        """)
        assert program.symbols["SIZE"] == 32

    def test_directive_in_text_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".text\n.word 5\n")


class TestPseudoInstructions:
    def test_lda_materialises_symbol_address(self):
        program = assemble("""
        main:
            LDA R1, table
            HALT
        .data
        table: .word 1
        """)
        instrs = list(program.iter_instructions())
        assert instrs[0].opcode is Opcode.MOVI
        assert instrs[1].opcode is Opcode.MOVHI
        low = instrs[0].imm & 0xFFFF
        value = (instrs[1].imm << 16) | low
        assert value == program.symbols["table"]

    def test_ldi_small_constant_is_single_instruction(self):
        program = assemble("LDI R0, #100\nHALT\n")
        instrs = list(program.iter_instructions())
        assert len(instrs) == 2
        assert instrs[0].opcode is Opcode.MOVI

    def test_ldi_large_constant_is_pair(self):
        program = assemble("LDI R0, #0x12345678\nHALT\n")
        instrs = list(program.iter_instructions())
        assert instrs[0].opcode is Opcode.MOVI
        assert instrs[1].opcode is Opcode.MOVHI
        low = instrs[0].imm & 0xFFFF
        assert ((instrs[1].imm << 16) | low) == 0x12345678

    def test_ldi_negative_small(self):
        program = assemble("LDI R0, #-5\nHALT\n")
        instrs = list(program.iter_instructions())
        assert instrs[0].imm == -5
        assert instrs[1].opcode is Opcode.HALT

    def test_lda_of_code_symbol_keeps_layout(self):
        # Regression: LDA of a small (text) address must still occupy
        # the two slots pass 1 reserved, or all later addresses shift.
        program = assemble("""
        main:
            LDA R0, finish
            NOP
        finish:
            HALT
        """)
        instrs = list(program.iter_instructions())
        assert [i.opcode for i in instrs] == [
            Opcode.MOVI, Opcode.MOVHI, Opcode.NOP, Opcode.HALT]
        assert program.symbols["finish"] == instrs[3].address
        low = instrs[0].imm & 0xFFFF
        assert ((instrs[1].imm << 16) | low) == program.symbols["finish"]


class TestEntryPoint:
    def test_main_is_entry(self):
        program = assemble("NOP\nmain: HALT\n")
        assert program.entry == TEXT_BASE + 4

    def test_start_fallback(self):
        program = assemble("_start: HALT\n")
        assert program.entry == TEXT_BASE

    def test_default_entry_is_text_base(self):
        program = assemble("HALT\n")
        assert program.entry == TEXT_BASE


class TestDisassembler:
    def test_roundtrip_through_disassembly(self):
        source = """
        main:
            MOVI R0, #10
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BNE loop
            HALT
        """
        program = assemble(source)
        listing = disassemble(program)
        assert "MOVI R0, #10" in listing
        assert "SUBI R0, R0, #1" in listing
        assert "-> loop" in listing
        assert "main:" in listing

    def test_data_words_render_as_words(self):
        # Opcode 0x3E is unassigned, so this word is not an instruction.
        from repro.isa.disassembler import disassemble_section
        word = (0x3E << 26).to_bytes(4, "little")
        rendered = list(disassemble_section(word, 0x1000))
        assert rendered == [(0x1000, None)]
