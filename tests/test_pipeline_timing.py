"""Direct unit tests for pipeline-analysis edge costs.

The per-edge components of the timing model — taken-branch redirect
penalties and cross-block load-use stalls — were previously exercised
only indirectly through end-to-end WCET tests; these tests pin them
down at the :func:`repro.pipeline.analyze_pipeline` level.
"""

from repro.analysis import analyze_values
from repro.cache.analysis import analyze_dcache, analyze_icache
from repro.cache.config import MachineConfig
from repro.cfg import EdgeKind, build_cfg, expand_task
from repro.isa import assemble
from repro.pipeline import analyze_pipeline

CONFIG = MachineConfig.default()


def timing_for(source, config=CONFIG):
    graph = expand_task(build_cfg(assemble(source)))
    values = analyze_values(graph)
    icache = analyze_icache(graph, config.icache)
    dcache = analyze_dcache(graph, config.dcache, values)
    return graph, analyze_pipeline(graph, config, icache, dcache)


def node_at(graph, address):
    return next(n for n in graph.nodes() if n.block == address)


def edge_cost(timing, source, target, kind):
    return timing.edges.get((source, target, kind), 0)


class TestTakenBranchPenalty:
    SOURCE = """
    main:
        CMPI R0, #10
        BGE big
        MOVI R1, #1
        B end
    big:
        MOVI R1, #2
    end:
        HALT
    """

    def test_taken_edge_pays_redirect(self):
        graph, timing = timing_for(self.SOURCE)
        symbols = graph.binary.program.symbols
        branch = node_at(graph, symbols["main"])
        big = node_at(graph, symbols["big"])
        assert edge_cost(timing, branch, big, EdgeKind.TAKEN) \
            == CONFIG.branch_penalty

    def test_fallthrough_edge_is_free(self):
        graph, timing = timing_for(self.SOURCE)
        symbols = graph.binary.program.symbols
        branch = node_at(graph, symbols["main"])
        fallthrough = node_at(graph, symbols["main"] + 8)
        assert edge_cost(timing, branch, fallthrough,
                         EdgeKind.FALLTHROUGH) == 0

    def test_unconditional_branch_charged_to_block_not_edge(self):
        # B always redirects, so its penalty lives in the block cost
        # (there is no taken/not-taken distinction for IPET to make).
        graph, timing = timing_for(self.SOURCE)
        symbols = graph.binary.program.symbols
        b_block = node_at(graph, symbols["main"] + 8)
        end = node_at(graph, symbols["end"])
        assert edge_cost(timing, b_block, end, EdgeKind.TAKEN) == 0
        # 2 instructions + the redirect.
        assert timing.block_cost(b_block) == 2 + CONFIG.branch_penalty


class TestCrossBlockLoadUseStall:
    STALL = """
    main:
        LDA R1, buf
        LDR R2, [R1]
    target:
        ADD R3, R2, R0
        ADDI R0, R0, #1
        CMPI R0, #3
        BLT target
        HALT
    .data
    buf: .word 7
    """

    NO_STALL = """
    main:
        LDA R1, buf
        LDR R2, [R1]
    target:
        ADDI R0, R0, #1
        ADD R3, R2, R0
        CMPI R0, #3
        BLT target
        HALT
    .data
    buf: .word 7
    """

    def test_successor_reading_loaded_register_stalls(self):
        graph, timing = timing_for(self.STALL)
        symbols = graph.binary.program.symbols
        loader = node_at(graph, symbols["main"])
        target = node_at(graph, symbols["target"])
        assert edge_cost(timing, loader, target, EdgeKind.FALLTHROUGH) \
            == CONFIG.load_use_stall

    def test_no_stall_when_first_instruction_is_independent(self):
        graph, timing = timing_for(self.NO_STALL)
        symbols = graph.binary.program.symbols
        loader = node_at(graph, symbols["main"])
        target = node_at(graph, symbols["target"])
        assert edge_cost(timing, loader, target,
                         EdgeKind.FALLTHROUGH) == 0

    def test_back_edge_has_branch_penalty_but_no_stall(self):
        # The latch ends in BLT (not a load): the taken back edge pays
        # only the redirect.
        graph, timing = timing_for(self.STALL)
        symbols = graph.binary.program.symbols
        target = node_at(graph, symbols["target"])
        assert edge_cost(timing, target, target, EdgeKind.TAKEN) \
            == CONFIG.branch_penalty

    def test_pop_pending_registers_stall(self):
        source = """
        main:
            PUSH {R4, R5}
            POP {R4, R5}
        target:
            ADD R0, R5, R5
            CMPI R0, #100
            BLT target
            HALT
        """
        graph, timing = timing_for(source)
        symbols = graph.binary.program.symbols
        popper = node_at(graph, symbols["main"])
        target = node_at(graph, symbols["target"])
        assert edge_cost(timing, popper, target, EdgeKind.FALLTHROUGH) \
            == CONFIG.load_use_stall

    def test_intra_block_stall_in_base_cost(self):
        source = """
        main:
            LDA R1, buf
            LDR R2, [R1]
            ADD R3, R2, R0
            HALT
        .data
        buf: .word 7
        """
        stalled_graph, stalled = timing_for(source)
        baseline_graph, baseline = timing_for(source.replace(
            "ADD R3, R2, R0", "ADD R3, R0, R0"))
        node = node_at(stalled_graph,
                       stalled_graph.binary.program.symbols["main"])
        base_node = node_at(baseline_graph,
                            baseline_graph.binary.program.symbols["main"])
        assert stalled.block_cost(node) \
            == baseline.block_cost(base_node) + CONFIG.load_use_stall
