"""Integration tests for whole-task value analysis."""

import pytest

from repro.isa import STACK_BASE, assemble
from repro.isa.registers import SP
from repro.cfg import build_cfg, expand_task
from repro.analysis import (Const, Interval, analyze_loop_bounds,
                            analyze_values)


def analyze(source, **kwargs):
    graph = expand_task(build_cfg(assemble(source)))
    return graph, analyze_values(graph, **kwargs)


def node_for(graph, address):
    return next(n for n in graph.nodes() if n.block == address)


class TestStraightLine:
    def test_constant_tracking(self):
        source = """
        main:
            MOVI R0, #5
            ADDI R1, R0, #3
            MUL R2, R0, R1
            HALT
        """
        graph, values = analyze(source)
        final = values.state_after_block(graph.entry)
        assert final.get(0).as_constant() == 5
        assert final.get(1).as_constant() == 8
        assert final.get(2).as_constant() == 40

    def test_stack_pointer_initialised(self):
        graph, values = analyze("main: HALT\n")
        state = values.fixpoint.state_at(graph.entry)
        assert state.get(SP).as_constant() == STACK_BASE

    def test_push_pop_roundtrip(self):
        source = """
        main:
            MOVI R4, #77
            PUSH {R4}
            MOVI R4, #0
            POP {R4}
            HALT
        """
        graph, values = analyze(source)
        final = values.state_after_block(graph.entry)
        assert final.get(4).as_constant() == 77
        assert final.get(SP).as_constant() == STACK_BASE

    def test_store_load_via_memory(self):
        source = """
        main:
            LDA R1, cell
            MOVI R0, #99
            STR R0, [R1]
            LDR R2, [R1]
            HALT
        .data
        cell: .word 0
        """
        graph, values = analyze(source)
        final = values.state_after_block(graph.entry)
        assert final.get(2).as_constant() == 99

    def test_initialised_data_is_seeded(self):
        source = """
        main:
            LDA R1, answer
            LDR R0, [R1]
            HALT
        .data
        answer: .word 42
        """
        graph, values = analyze(source)
        final = values.state_after_block(graph.entry)
        assert final.get(0).as_constant() == 42


class TestBranching:
    def test_join_of_two_branches(self):
        source = """
        main:
            CMPI R0, #0
            BLT neg
            MOVI R1, #1
            B join
        neg:
            MOVI R1, #2
        join:
            HALT
        """
        graph, values = analyze(source)
        program = assemble(source)
        join = node_for(graph, program.symbols["join"])
        state = values.fixpoint.state_at(join)
        lo, hi = state.get(1).signed_bounds()
        assert (lo, hi) == (1, 2)

    def test_branch_refinement(self):
        source = """
        main:
            CMPI R0, #10
            BGE big
            MOVI R2, #0
            HALT
        big:
            MOVI R2, #1
            HALT
        """
        graph, values = analyze(source)
        program = assemble(source)
        big = node_for(graph, program.symbols["big"])
        state = values.fixpoint.state_at(big)
        lo, _hi = state.get(0).signed_bounds()
        assert lo >= 10

    def test_infeasible_edge_detected(self):
        source = """
        main:
            MOVI R0, #3
            CMPI R0, #5
            BGE never
            MOVI R1, #1
            HALT
        never:
            MOVI R1, #2
            HALT
        """
        graph, values = analyze(source)
        program = assemble(source)
        never = node_for(graph, program.symbols["never"])
        assert not values.fixpoint.reachable(never)
        assert len(values.infeasible_edges) == 1
        assert values.infeasible_edges[0].target == never

    def test_condition_outcome_recorded(self):
        source = """
        main:
            MOVI R0, #3
            CMPI R0, #5
            BLT always
            MOVI R1, #1
            HALT
        always:
            HALT
        """
        graph, values = analyze(source)
        outcomes = list(values.condition_outcomes.values())
        assert outcomes == [True]


class TestLoops:
    def test_counter_interval_stabilises(self):
        source = """
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
            HALT
        """
        graph, values = analyze(source)
        program = assemble(source)
        loop = node_for(graph, program.symbols["loop"])
        state = values.fixpoint.state_at(loop)
        lo, hi = state.get(0).signed_bounds()
        assert lo == 0
        assert hi <= 10   # narrowed back after widening

    def test_exit_state_is_limit(self):
        source = """
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
        done:
            HALT
        """
        graph, values = analyze(source)
        program = assemble(source)
        done = node_for(graph, program.symbols["done"])
        state = values.fixpoint.state_at(done)
        lo, hi = state.get(0).signed_bounds()
        assert (lo, hi) == (10, 10)

    def test_memory_access_ranges_in_loop(self):
        source = """
        main:
            MOVI R0, #0
            LDA R1, arr
        loop:
            SHLI R3, R0, #2
            LDR R2, [R1, R3]
            ADDI R0, R0, #1
            CMPI R0, #8
            BLT loop
            HALT
        .data
        arr: .word 1, 2, 3, 4, 5, 6, 7, 8
        """
        graph, values = analyze(source)
        program = assemble(source)
        array_loads = [a for a in values.accesses
                       if a.is_load and a.instruction.opcode.name == "LDRX"]
        assert array_loads
        base = program.symbols["arr"]
        for access in array_loads:
            lo, hi = access.byte_range
            assert lo >= base
            assert hi <= base + 7 * 4


class TestInterprocedural:
    def test_argument_flows_into_callee(self):
        source = """
        main:
            MOVI R0, #21
            BL double
            HALT
        double:
            ADD R0, R0, R0
            RET
        """
        graph, values = analyze(source)
        # Find the callee's block in its call context.
        callee_nodes = [n for n in graph.nodes() if len(n.context) == 1]
        assert callee_nodes
        program = assemble(source)
        # After the call returns, R0 is 42 at the HALT block.
        halt_addr = program.symbols["main"] + 8
        halt = node_for(graph, halt_addr)
        state = values.fixpoint.state_at(halt)
        assert state.get(0).as_constant() == 42

    def test_per_context_precision(self):
        source = """
        main:
            MOVI R0, #1
            BL id
            MOV R4, R0
            MOVI R0, #2
            BL id
            HALT
        id:
            RET
        """
        graph, values = analyze(source)
        # Each call context sees its own argument value.
        id_nodes = [n for n in graph.nodes() if len(n.context) == 1]
        constants = set()
        for node in id_nodes:
            state = values.fixpoint.state_at(node)
            constants.add(state.get(0).as_constant())
        assert constants == {1, 2}

    def test_callee_saved_registers_restored(self):
        source = """
        main:
            MOVI R4, #7
            BL clobber
            HALT
        clobber:
            PUSH {R4}
            MOVI R4, #0
            POP {R4}
            RET
        """
        graph, values = analyze(source)
        program = assemble(source)
        halt = node_for(graph, program.symbols["main"] + 8)
        state = values.fixpoint.state_at(halt)
        assert state.get(4).as_constant() == 7


class TestEntryAnnotations:
    def test_register_range_annotation(self):
        source = """
        main:
            CMPI R0, #50
            BGE high
            MOVI R1, #1
            HALT
        high:
            MOVI R1, #2
            HALT
        """
        graph, values = analyze(source, register_ranges={0: (0, 30)})
        program = assemble(source)
        high = node_for(graph, program.symbols["high"])
        assert not values.fixpoint.reachable(high)


class TestPrecisionStats:
    def test_all_exact_for_direct_accesses(self):
        source = """
        main:
            LDA R1, cell
            LDR R0, [R1]
            STR R0, [R1]
            HALT
        .data
        cell: .word 5
        """
        _graph, values = analyze(source)
        stats = values.precision()
        assert stats.total == 2
        assert stats.exact == 2
        assert stats.exact_ratio == 1.0

    def test_bounded_access_counted(self):
        source = """
        main:
            MOVI R0, #0
            LDA R1, arr
        loop:
            SHLI R3, R0, #2
            LDR R2, [R1, R3]
            ADDI R0, R0, #1
            CMPI R0, #4
            BLT loop
            HALT
        .data
        arr: .word 1, 2, 3, 4
        """
        _graph, values = analyze(source)
        stats = values.precision()
        assert stats.bounded >= 1
        assert stats.unknown == 0


class TestConstantPropagationDomain:
    def test_consts_tracked(self):
        source = """
        main:
            MOVI R0, #5
            ADDI R1, R0, #2
            HALT
        """
        graph, values = analyze(source, domain=Const)
        final = values.state_after_block(graph.entry)
        assert final.get(1).as_constant() == 7

    def test_join_loses_to_top(self):
        source = """
        main:
            CMPI R0, #0
            BLT neg
            MOVI R1, #1
            B join
        neg:
            MOVI R1, #2
        join:
            HALT
        """
        graph, values = analyze(source, domain=Const)
        program = assemble(source)
        join = node_for(graph, program.symbols["join"])
        state = values.fixpoint.state_at(join)
        assert state.get(1).is_top()
