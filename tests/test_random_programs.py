"""End-to-end soundness on randomly generated programs (S3).

Hypothesis generates structured random KRISC programs (straight-line
arithmetic, if/else diamonds, small counted loops, memory traffic) and
random inputs.  For each: the concrete run's final register and memory
values must be contained in the abstract state value analysis computed
at the exit — over every domain — and the WCET/stack bounds must cover
the run.

The model×policy soundness matrix re-checks the WCET obligation in
every combination of timing model (``additive``, ``krisc5``) and
context policy (``full``, ``klimited``, ``vivu``): the simulated
cycles under a model must never exceed the bound derived under that
model, whatever the expansion scheme.  ``REPRO_FUZZ_EXAMPLES``
overrides the per-combination example budget (CI smoke uses a reduced
one).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Const, Interval, StridedInterval, analyze_values
from repro.cache.config import CacheConfig, MachineConfig
from repro.cfg import build_cfg, expand_task
from repro.cfg.contexts import make_policy
from repro.isa import assemble
from repro.sim import run_program
from repro.stack import analyze_stack
from repro.wcet import analyze_wcet

MATRIX_MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "10"))

#: Machine configurations the soundness matrix sweeps: the default
#: point plus an adversarial one (tiny direct-mapped caches, odd
#: penalties, a 2-cycle interlock window, state-set cap forced to 1)
#: so violations that hide at the default parameters surface in CI.
MACHINES = {
    "default": MachineConfig.default(),
    "adverse": MachineConfig(
        icache=CacheConfig(num_sets=2, associativity=1, line_size=8,
                           miss_penalty=13),
        dcache=CacheConfig(num_sets=2, associativity=1, line_size=8,
                           miss_penalty=7),
        branch_penalty=3, mul_extra=5, load_use_stall=2,
        pipeline_state_cap=1),
}

# Registers the generator assigns freely (R1 is the data base pointer,
# R0 the input; SP/LR stay untouched).
WORK_REGS = (2, 3, 4, 5, 6)

_ALU_RRR = ("ADD", "SUB", "MUL", "AND", "OR", "XOR")
_ALU_RRI = ("ADDI", "SUBI", "ANDI", "ORI", "XORI")


@st.composite
def straightline(draw, max_ops=6):
    lines = []
    for _ in range(draw(st.integers(0, max_ops))):
        choice = draw(st.integers(0, 5))
        rd = draw(st.sampled_from(WORK_REGS))
        rs = draw(st.sampled_from(WORK_REGS))
        rt = draw(st.sampled_from(WORK_REGS))
        imm = draw(st.integers(-100, 100))
        if choice == 0:
            lines.append(f"MOVI R{rd}, #{imm}")
        elif choice == 1:
            op = draw(st.sampled_from(_ALU_RRR))
            lines.append(f"{op} R{rd}, R{rs}, R{rt}")
        elif choice == 2:
            op = draw(st.sampled_from(_ALU_RRI))
            lines.append(f"{op} R{rd}, R{rs}, #{imm}")
        elif choice == 3:
            shift = draw(st.integers(0, 7))
            op = draw(st.sampled_from(("SHLI", "SHRI", "ASRI")))
            lines.append(f"{op} R{rd}, R{rs}, #{shift}")
        elif choice == 4:
            offset = 4 * draw(st.integers(0, 7))
            lines.append(f"STR R{rs}, [R1, #{offset}]")
        else:
            offset = 4 * draw(st.integers(0, 7))
            lines.append(f"LDR R{rd}, [R1, #{offset}]")
    return lines


@st.composite
def programs(draw):
    label_counter = [0]

    def fresh():
        label_counter[0] += 1
        return f"gen{label_counter[0]}"

    body = []
    body.extend(draw(straightline()))
    for _ in range(draw(st.integers(0, 2))):
        kind = draw(st.integers(0, 1))
        if kind == 0:
            # if/else diamond on a random comparison.
            reg = draw(st.sampled_from(WORK_REGS + (0,)))
            value = draw(st.integers(-50, 50))
            cond = draw(st.sampled_from(
                ("EQ", "NE", "LT", "GE", "GT", "LE")))
            l_else, l_end = fresh(), fresh()
            body.append(f"CMPI R{reg}, #{value}")
            body.append(f"B{cond} {l_else}")
            body.extend(draw(straightline(4)))
            body.append(f"B {l_end}")
            body.append(f"{l_else}:")
            body.extend(draw(straightline(4)))
            body.append(f"{l_end}:")
        else:
            # Counted do-while loop with a dedicated counter (R7).
            count = draw(st.integers(1, 6))
            l_loop = fresh()
            body.append("MOVI R7, #0")
            body.append(f"{l_loop}:")
            body.extend(draw(straightline(3)))
            body.append("ADDI R7, R7, #1")
            body.append(f"CMPI R7, #{count}")
            body.append(f"BLT {l_loop}")
    source = "main:\n    LDA R1, buf\n" + \
        "\n".join(f"    {line}" for line in body) + \
        "\n    HALT\n.data\nbuf: .space 64\n"
    input_low = draw(st.integers(-100, 100))
    input_high = input_low + draw(st.integers(0, 50))
    input_value = draw(st.integers(input_low, input_high))
    return source, (input_low, input_high), input_value


@pytest.mark.parametrize("domain", [Interval, StridedInterval, Const])
@given(data=programs())
@settings(max_examples=40, deadline=None)
def test_abstract_state_contains_concrete_run(domain, data):
    source, input_range, input_value = data
    program = assemble(source)
    graph = expand_task(build_cfg(program))
    values = analyze_values(graph, domain=domain,
                            register_ranges={0: input_range})
    execution = run_program(program, arguments={0: input_value},
                            max_steps=100_000)

    exit_nodes = graph.exit_nodes()
    final_states = [values.state_after_block(node)
                    for node in exit_nodes]
    final_states = [s for s in final_states
                    if s is not None and not s.is_bottom()]
    assert final_states, "no reachable exit state"
    joined = final_states[0]
    for state in final_states[1:]:
        joined = joined.join(state)

    for reg in range(16):
        concrete = execution.registers[reg]
        assert joined.get(reg).contains(concrete), (
            f"R{reg}={concrete:#x} not in {joined.get(reg)!r}")


@given(data=programs())
@settings(max_examples=25, deadline=None)
def test_wcet_and_stack_bounds_cover_random_runs(data):
    source, input_range, input_value = data
    program = assemble(source)
    wcet = analyze_wcet(program, register_ranges={0: input_range})
    stack = analyze_stack(program, register_ranges={0: input_range})
    execution = run_program(program, arguments={0: input_value},
                            max_steps=100_000)
    assert execution.cycles <= wcet.wcet_cycles
    assert execution.max_stack_usage <= stack.bound


@pytest.mark.parametrize("machine,model,policy", [
    (machine, model, policy)
    for machine in MACHINES
    for model in ("additive", "krisc5")
    for policy in ("full", "klimited", "vivu")])
@given(data=programs())
@settings(max_examples=MATRIX_MAX_EXAMPLES, deadline=None)
def test_model_policy_soundness_matrix(machine, model, policy, data):
    """Simulated cycles ≤ WCET bound in every machine×model×policy
    combination.

    The run is simulated under the same machine config the bound was
    derived for, so the krisc5 rows check the overlapped pipeline
    end to end (abstract pipeline states vs the cycle-accurate
    5-stage simulator) and the additive rows guard the baseline —
    both at the default machine parameters and at an adversarial
    point (tiny caches, large penalties, cap 1).
    """
    source, input_range, input_value = data
    program = assemble(source)
    config = MACHINES[machine].with_model(model)
    wcet = analyze_wcet(program, config=config,
                        register_ranges={0: input_range},
                        context_policy=make_policy(policy))
    assert wcet.config.pipeline_model == model
    assert wcet.timing.model == model
    execution = run_program(program, config=wcet.config,
                            arguments={0: input_value},
                            max_steps=100_000)
    assert execution.cycles <= wcet.wcet_cycles, (
        f"{machine}/{model}/{policy}: run took {execution.cycles}, "
        f"bound is {wcet.wcet_cycles}")


@given(data=programs())
@settings(max_examples=MATRIX_MAX_EXAMPLES, deadline=None)
def test_krisc5_bound_not_looser_than_additive(data):
    """Overlap can only tighten: krisc5 WCET ≤ additive WCET, and the
    krisc5 machine is never slower than the additive one on a run."""
    source, input_range, input_value = data
    program = assemble(source)
    additive = analyze_wcet(program, register_ranges={0: input_range})
    krisc5 = analyze_wcet(program, register_ranges={0: input_range},
                          pipeline_model="krisc5")
    assert krisc5.wcet_cycles <= additive.wcet_cycles
    run_additive = run_program(program, arguments={0: input_value},
                               max_steps=100_000)
    run_krisc5 = run_program(program, config=krisc5.config,
                             arguments={0: input_value},
                             max_steps=100_000)
    assert run_krisc5.cycles <= run_additive.cycles


@given(data=programs())
@settings(max_examples=25, deadline=None)
def test_abstract_memory_contains_concrete_memory(data):
    source, input_range, input_value = data
    program = assemble(source)
    graph = expand_task(build_cfg(program))
    values = analyze_values(graph, register_ranges={0: input_range})

    from repro.sim import Simulator
    simulator = Simulator(program)
    simulator.run(arguments={0: input_value}, max_steps=100_000)

    exit_states = [values.state_after_block(node)
                   for node in graph.exit_nodes()]
    exit_states = [s for s in exit_states
                   if s is not None and not s.is_bottom()]
    joined = exit_states[0]
    for state in exit_states[1:]:
        joined = joined.join(state)
    for address, abstract in joined.memory.entries.items():
        concrete = simulator.memory.get(address, 0)
        assert abstract.contains(concrete), (
            f"mem[{address:#x}]={concrete:#x} not in {abstract!r}")
