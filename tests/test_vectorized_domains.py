"""Differential suite pinning the numpy abstract domains to their
pure-Python reference implementations.

The vectorized cache states (:mod:`repro.cache.vectorized`) and the
packed-array value memory with compiled block transfers
(:mod:`repro.analysis.vectorized`, :func:`repro.analysis.transfer.compile_block`)
must be *bit-identical* to the dict/object reference implementations —
not merely sound.  Hypothesis drives random operation sequences through
both implementations in lockstep and compares canonical forms after
every step; an end-to-end slice then checks whole-analysis parity on
real workloads under both ``REPRO_DOMAIN_IMPL`` settings.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (AbstractMemory, AbstractState, AddressSpace,
                            Interval, VectorMemory, compile_block,
                            transfer_block)
from repro.cache.abstract import Classification, TripleCacheState
from repro.cache.config import CacheConfig, MachineConfig
from repro.cache.vectorized import (CacheLineIndex, VectorTripleCacheState,
                                    apply_access, classify_access,
                                    compile_access, compile_block_accesses)
from repro.domainimpl import (DEFAULT_DOMAIN_IMPL, DOMAIN_IMPL_ENV,
                              resolve_domain_impl)
from repro.isa.instructions import Instruction, Opcode
from repro.wcet import analyze_wcet
from repro.workloads.suite import get_workload


# -- Canonical forms --------------------------------------------------------


def canonical_python(state: TripleCacheState):
    return (dict(state.must.ages),
            (state.may.universal, dict(state.may.ages)),
            dict(state.pers.ages))


def canonical_vector(state: VectorTripleCacheState):
    index = state.index
    assoc = index.assoc
    mat = state.mat
    must = {line: int(mat[0, slot])
            for line, slot in index.slot_of.items()
            if mat[0, slot] < assoc}
    may = {line: -int(mat[1, slot])
           for line, slot in index.slot_of.items()
           if mat[1, slot] > -assoc}
    pers = {line: int(mat[2, slot])
            for line, slot in index.slot_of.items()
            if mat[2, slot] >= 0}
    return must, (state.universal, may), pers


def apply_python(state: TripleCacheState, lines) -> None:
    if lines is None:
        state.access_unknown()
    else:
        state.access_range(list(lines))


def classify_python(state: TripleCacheState, lines) -> Classification:
    if lines is None:
        return Classification.NOT_CLASSIFIED
    return state.classify_range(list(lines))


# -- Strategies -------------------------------------------------------------


cache_configs = st.builds(
    CacheConfig,
    num_sets=st.sampled_from([1, 2, 4, 8]),
    associativity=st.sampled_from([1, 2, 4]),
    line_size=st.just(16))


@st.composite
def cache_scenarios(draw):
    """A cache geometry, a line universe, and an access sequence over
    it (single lines, line ranges, and unknown-address accesses)."""
    config = draw(cache_configs)
    universe = draw(st.lists(st.integers(0, 63), min_size=1, max_size=16,
                             unique=True))
    choices = [st.sampled_from(universe).map(lambda line: (line,)),
               st.just(None)]
    if len(universe) >= 2:
        choices.append(
            st.lists(st.sampled_from(universe), min_size=2,
                     max_size=min(5, len(universe)),
                     unique=True).map(tuple))
    access = st.one_of(*choices)
    sequence = draw(st.lists(access, min_size=1, max_size=25))
    return config, universe, sequence


# -- Cache-state lockstep ---------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(cache_scenarios())
def test_cache_access_and_classify_lockstep(scenario):
    """Every access updates both representations identically, and both
    classify identically *before* each access (the order the analysis
    uses them in)."""
    config, universe, sequence = scenario
    index = CacheLineIndex(config, universe)
    py = TripleCacheState(config)
    vec = VectorTripleCacheState(index)
    for lines in sequence:
        compiled = compile_access(index, lines)
        assert classify_python(py, lines) == classify_access(vec, compiled)
        apply_python(py, lines)
        apply_access(vec, compiled)
        assert canonical_python(py) == canonical_vector(vec)


@settings(max_examples=100, deadline=None)
@given(cache_scenarios(), st.data())
def test_cache_join_and_leq_parity(scenario, data):
    """join and leq agree between implementations on states reached by
    arbitrary access sequences (including universal may caches)."""
    config, universe, sequence = scenario
    split = data.draw(st.integers(0, len(sequence)))
    index = CacheLineIndex(config, universe)
    py_a, py_b = TripleCacheState(config), TripleCacheState(config)
    vec_a, vec_b = (VectorTripleCacheState(index),
                    VectorTripleCacheState(index))
    for lines in sequence[:split]:
        apply_python(py_a, lines)
        apply_access(vec_a, compile_access(index, lines))
    for lines in sequence[split:]:
        apply_python(py_b, lines)
        apply_access(vec_b, compile_access(index, lines))

    assert canonical_python(py_a.join(py_b)) \
        == canonical_vector(vec_a.join(vec_b))
    assert py_a.leq(py_b) == vec_a.leq(vec_b)
    assert py_b.leq(py_a) == vec_b.leq(vec_a)
    # leq must be reflexive in both representations.
    assert py_a.leq(py_a) and vec_a.leq(vec_a)


@settings(max_examples=100, deadline=None)
@given(cache_scenarios())
def test_fused_block_accesses_equal_sequential(scenario):
    """compile_block_accesses (repeat elision + distinct-set fusion)
    reproduces the sequential per-access result exactly."""
    config, universe, sequence = scenario
    index = CacheLineIndex(config, universe)
    compiled = [compile_access(index, lines) for lines in sequence]
    fused = compile_block_accesses(index, compiled)
    a = VectorTripleCacheState(index)
    b = VectorTripleCacheState(index)
    for c in compiled:
        apply_access(a, c)
    for c in fused:
        apply_access(b, c)
    assert a.universal == b.universal
    assert np.array_equal(a.mat, b.mat)


def test_fused_block_dedupes_fetch_runs():
    """Instruction-fetch style access lists (each line repeated once
    per instruction) collapse to one fused op per distinct-set run."""
    config = CacheConfig(num_sets=16, associativity=2, line_size=16)
    lines = [100, 101, 102, 103]
    index = CacheLineIndex(config, lines)
    compiled = [compile_access(index, (line,))
                for line in lines for _ in range(4)]
    fused = compile_block_accesses(index, compiled)
    assert len(fused) == 1


# -- Value-state lockstep ---------------------------------------------------


REGS = list(range(8))

alu_reg_ops = st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL,
                               Opcode.AND, Opcode.OR, Opcode.XOR])
alu_imm_ops = st.sampled_from([Opcode.ADDI, Opcode.SUBI, Opcode.MULI,
                               Opcode.ANDI, Opcode.ORI])
small = st.integers(-64, 64)
addr_imm = st.integers(0, 24).map(lambda k: 0x8000 + 4 * k)


@st.composite
def straight_line_blocks(draw):
    """A random straight-line block over the data-effect opcodes the
    compiled transfer handles, with loads and stores hitting a small
    word-aligned arena."""
    instrs = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.integers(0, 6))
        rd = draw(st.sampled_from(REGS))
        rs1 = draw(st.sampled_from(REGS))
        rs2 = draw(st.sampled_from(REGS))
        if kind == 0:
            instrs.append(Instruction(draw(alu_reg_ops), rd=rd,
                                      rs1=rs1, rs2=rs2))
        elif kind == 1:
            instrs.append(Instruction(draw(alu_imm_ops), rd=rd, rs1=rs1,
                                      imm=draw(small)))
        elif kind == 2:
            instrs.append(Instruction(Opcode.MOVI, rd=rd,
                                      imm=draw(small)))
        elif kind == 3:
            instrs.append(Instruction(Opcode.MOV, rd=rd, rs1=rs1))
        elif kind == 4:
            instrs.append(Instruction(Opcode.CMPI, rs1=rs1,
                                      imm=draw(small)))
        elif kind == 5:
            instrs.append(Instruction(Opcode.LDR, rd=rd, rs1=rs1,
                                      imm=draw(addr_imm)))
        else:
            instrs.append(Instruction(Opcode.STR, rs1=rs1, rs2=rs2,
                                      imm=draw(addr_imm)))
    seeds = draw(st.lists(st.tuples(st.sampled_from(REGS), small),
                          max_size=4))
    return instrs, seeds


def _interval_key(value):
    return (True,) if value.is_bottom() \
        else (False,) + value.signed_bounds()


def _memory_entries(state):
    return {addr: _interval_key(value)
            for addr, value in state.memory.entries.items()
            if not value.is_top()}


def _states_match(py_state, np_state):
    assert py_state.is_bottom() == np_state.is_bottom()
    if py_state.is_bottom():
        return
    for reg in range(16):
        assert _interval_key(py_state.get(reg)) \
            == _interval_key(np_state.get(reg)), f"R{reg}"
    assert py_state.aliases == np_state.aliases
    assert (py_state.flags is None) == (np_state.flags is None)
    assert _memory_entries(py_state) == _memory_entries(np_state)


def _paired_states(seeds, space=None):
    # Production shares one AddressSpace across every state of a run
    # (slots must line up for lattice ops); pass `space` to model that.
    if space is None:       # an empty space is falsy: test `is None`
        space = AddressSpace()
    py_state = AbstractState(Interval)
    np_state = AbstractState(Interval,
                             memory=VectorMemory(Interval, space))
    for reg, value in seeds:
        # seed rs1 candidates with constants so loads/stores resolve
        py_state.set(reg, Interval.const(value))
        np_state.set(reg, Interval.const(value))
    return py_state, np_state


@settings(max_examples=120, deadline=None)
@given(straight_line_blocks())
def test_compiled_block_matches_python_transfer(block):
    """compile_block over VectorMemory reproduces transfer_block over
    AbstractMemory: registers, aliases, flags, and memory entries
    (absent == top)."""
    instrs, seeds = block
    py_state, np_state = _paired_states(seeds)
    py_out = transfer_block(py_state, instrs)
    np_out = compile_block(instrs, Interval)(np_state)
    _states_match(py_out, np_out)


@settings(max_examples=60, deadline=None)
@given(straight_line_blocks(), straight_line_blocks())
def test_vector_memory_lattice_parity(block_a, block_b):
    """join/widen/narrow/leq on states reached by different blocks
    agree between the packed-array memory and the dict memory."""
    instrs_a, seeds = block_a
    instrs_b, _ = block_b
    space = AddressSpace()
    py_a, np_a = _paired_states(seeds, space)
    py_b, np_b = _paired_states(seeds, space)
    py_a = transfer_block(py_a, instrs_a)
    np_a = compile_block(instrs_a, Interval)(np_a)
    py_b = transfer_block(py_b, instrs_b)
    np_b = compile_block(instrs_b, Interval)(np_b)

    assert py_a.leq(py_b) == np_a.leq(np_b)
    assert py_b.leq(py_a) == np_b.leq(np_a)
    _states_match(py_a.join(py_b), np_a.join(np_b))
    thresholds = (-16, 0, 10, 100)
    _states_match(py_a.widen(py_b, thresholds),
                  np_a.widen(np_b, thresholds))
    _states_match(py_a.narrow(py_b), np_a.narrow(np_b))


def test_vector_memory_copy_on_write_identity():
    """copy() shares the packed arrays until a write materializes them,
    and same_entries sees through the sharing (the identity fast path
    the fixpoint kernel relies on)."""
    memory = VectorMemory(Interval, AddressSpace())
    memory.seed(0x8000, Interval.const(7))
    clone = memory.copy()
    assert clone.same_entries(memory)
    clone.seed(0x8004, Interval.const(9))
    assert not clone.same_entries(memory)
    assert 0x8004 not in memory.entries
    assert memory.entries[0x8000].signed_bounds() == (7, 7)


# -- Toggle plumbing --------------------------------------------------------


def test_resolve_domain_impl_precedence(monkeypatch):
    monkeypatch.delenv(DOMAIN_IMPL_ENV, raising=False)
    assert resolve_domain_impl() == DEFAULT_DOMAIN_IMPL
    monkeypatch.setenv(DOMAIN_IMPL_ENV, "python")
    assert resolve_domain_impl() == "python"
    # An explicit argument beats the environment.
    assert resolve_domain_impl("numpy") == "numpy"
    with pytest.raises(ValueError):
        resolve_domain_impl("fortran")
    monkeypatch.setenv(DOMAIN_IMPL_ENV, "fortran")
    with pytest.raises(ValueError):
        resolve_domain_impl()


def test_machine_config_validates_domain_impl():
    assert MachineConfig(domain_impl="python").domain_impl == "python"
    with pytest.raises(ValueError):
        MachineConfig(domain_impl="fortran")


def test_phase_cache_keys_distinguish_impls(tmp_path):
    """Artifact-cache keys must incorporate the implementation so a
    python-impl artifact is never served to a numpy-impl run."""
    from repro.batch import ArtifactCache
    workload = get_workload("fibcall")
    program = workload.compile()
    cache = ArtifactCache(str(tmp_path), salt="s")
    analyze_wcet(program, phase_cache=cache, domain_impl="python")
    misses = cache.misses
    assert cache.hits == 0 and misses > 0
    # Same program under the other impl: the vectorized phases miss.
    analyze_wcet(program, phase_cache=cache, domain_impl="numpy")
    assert cache.misses > misses


# -- End-to-end parity ------------------------------------------------------


@pytest.mark.parametrize("name", ["fibcall", "insertsort", "crc"])
def test_analyze_wcet_parity_across_impls(name):
    """Whole-pipeline bit-identity: bounds and cache classifications
    are equal under both implementations."""
    program = get_workload(name).compile()
    py = analyze_wcet(program, domain_impl="python")
    vec = analyze_wcet(program, domain_impl="numpy")
    assert py.domain_impl == "python" and vec.domain_impl == "numpy"
    assert py.wcet_cycles == vec.wcet_cycles
    assert {node: [c.name for c in outcomes]
            for node, outcomes in py.icache.classifications.items()} \
        == {node: [c.name for c in outcomes]
            for node, outcomes in vec.icache.classifications.items()}
    assert py.dcache.stats == vec.dcache.stats
    # Per-node value-analysis entry states agree (memories compared by
    # their materialised entries, absent == top).
    for node, py_state in py.values.fixpoint.entry_states.items():
        np_state = vec.values.fixpoint.entry_states[node]
        _states_match(py_state, np_state)


def test_env_toggle_drives_analysis(monkeypatch):
    program = get_workload("fibcall").compile()
    monkeypatch.setenv(DOMAIN_IMPL_ENV, "python")
    assert analyze_wcet(program).domain_impl == "python"
    monkeypatch.delenv(DOMAIN_IMPL_ENV)
    assert analyze_wcet(program).domain_impl == DEFAULT_DOMAIN_IMPL
    # MachineConfig pins the impl regardless of the environment.
    monkeypatch.setenv(DOMAIN_IMPL_ENV, "numpy")
    config = MachineConfig(domain_impl="python")
    assert analyze_wcet(program, config=config).domain_impl == "python"
