"""Unit and property tests for abstract cache domains.

The central property (S4 in DESIGN.md): must/may/persistence abstract
states over-approximate every reachable concrete LRU state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (CacheConfig, Classification, LRUCache, MayCache,
                         MustCache, PersistenceCache, TripleCacheState)

CONFIG = CacheConfig(num_sets=4, associativity=2, line_size=16,
                     miss_penalty=10)

addresses = st.integers(min_value=0, max_value=16 * 32 - 1)


class TestConcreteLRU:
    def test_miss_then_hit(self):
        cache = LRUCache(CONFIG)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(4)   # same line

    def test_eviction_order(self):
        cache = LRUCache(CONFIG)
        # Three lines in the same set (stride = num_sets * line_size).
        stride = CONFIG.num_sets * CONFIG.line_size
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)   # evicts line 0 (assoc 2)
        assert not cache.contains(0)
        assert cache.contains(stride)
        assert cache.contains(2 * stride)

    def test_lru_promotion(self):
        cache = LRUCache(CONFIG)
        stride = CONFIG.num_sets * CONFIG.line_size
        cache.access(0)
        cache.access(stride)
        cache.access(0)            # promote line 0
        cache.access(2 * stride)   # now evicts line of `stride`
        assert cache.contains(0)
        assert not cache.contains(stride)

    def test_age_tracking(self):
        cache = LRUCache(CONFIG)
        stride = CONFIG.num_sets * CONFIG.line_size
        cache.access(0)
        cache.access(stride)
        assert cache.age_of(stride) == 0
        assert cache.age_of(0) == 1
        assert cache.age_of(2 * stride) is None

    def test_hit_miss_counters(self):
        cache = LRUCache(CONFIG)
        cache.access(0)
        cache.access(0)
        cache.access(256)
        assert cache.misses == 2
        assert cache.hits == 1
        assert cache.accesses == 3


class TestMustCache:
    def test_access_inserts_at_age_zero(self):
        must = MustCache(CONFIG)
        must.access(5)
        assert must.contains(5)
        assert must.ages[5] == 0

    def test_eviction_at_associativity(self):
        must = MustCache(CONFIG)
        lines = [0, CONFIG.num_sets, 2 * CONFIG.num_sets]  # same set
        must.access(lines[0])
        must.access(lines[1])
        must.access(lines[2])
        assert not must.contains(lines[0])
        assert must.contains(lines[1])
        assert must.contains(lines[2])

    def test_join_intersects(self):
        a, b = MustCache(CONFIG), MustCache(CONFIG)
        a.access(1)
        a.access(2)
        b.access(2)
        joined = a.join(b)
        assert joined.contains(2)
        assert not joined.contains(1)

    def test_join_takes_max_age(self):
        a, b = MustCache(CONFIG), MustCache(CONFIG)
        a.ages = {1: 0}
        b.ages = {1: 1}
        assert a.join(b).ages[1] == 1

    def test_rehit_refreshes_age(self):
        must = MustCache(CONFIG)
        same_set = [0, CONFIG.num_sets]
        must.access(same_set[0])
        must.access(same_set[1])
        must.access(same_set[0])   # refresh
        must.access(same_set[1])
        assert must.contains(same_set[0])
        assert must.contains(same_set[1])


class TestMayCache:
    def test_absence_proves_miss(self):
        may = MayCache(CONFIG)
        assert not may.may_contain(3)
        may.access(3)
        assert may.may_contain(3)

    def test_join_unions(self):
        a, b = MayCache(CONFIG), MayCache(CONFIG)
        a.access(1)
        b.access(2)
        joined = a.join(b)
        assert joined.may_contain(1)
        assert joined.may_contain(2)

    def test_universal_poisons(self):
        may = MayCache(CONFIG)
        may.make_universal()
        assert may.may_contain(12345)
        joined = MayCache(CONFIG).join(may)
        assert joined.universal


class TestClassification:
    def test_always_hit_after_access(self):
        state = TripleCacheState(CONFIG)
        state.access(7)
        assert state.classify(7) is Classification.ALWAYS_HIT

    def test_always_miss_when_cold(self):
        state = TripleCacheState(CONFIG)
        assert state.classify(7) is Classification.ALWAYS_MISS

    def test_not_classified_after_join(self):
        hot = TripleCacheState(CONFIG)
        hot.access(7)
        cold = TripleCacheState(CONFIG)
        # Saturate persistence in the cold branch so the line is neither
        # must-present, may-absent, nor persistent.
        stride = CONFIG.num_sets
        cold.access(7)
        cold.access(7 + stride)
        cold.access(7 + 2 * stride)   # 7 evicted, pers saturated
        joined = hot.join(cold)
        assert joined.classify(7) is Classification.NOT_CLASSIFIED

    def test_persistent_after_benign_join(self):
        hot = TripleCacheState(CONFIG)
        hot.access(7)
        cold = TripleCacheState(CONFIG)   # never accessed 7
        joined = hot.join(cold)
        # 7 may or may not be cached, but was never possibly evicted.
        assert joined.classify(7) is Classification.PERSISTENT

    def test_range_classification(self):
        state = TripleCacheState(CONFIG)
        state.access(1)
        state.access(2)
        assert state.classify_range([1, 2]) is Classification.ALWAYS_HIT
        assert state.classify_range([10, 11]) is Classification.ALWAYS_MISS


@st.composite
def access_sequences(draw):
    return draw(st.lists(addresses, min_size=0, max_size=40))


class TestSoundnessAgainstConcrete:
    """Galois soundness of the abstract caches (property S4/S6)."""

    @given(access_sequences(), addresses)
    @settings(max_examples=300)
    def test_must_cache_soundness(self, sequence, probe):
        concrete = LRUCache(CONFIG)
        must = MustCache(CONFIG)
        for address in sequence:
            concrete.access(address)
            must.access(CONFIG.line_of(address))
        line = CONFIG.line_of(probe)
        if must.contains(line):
            assert concrete.contains(probe)
            assert concrete.age_of(probe) <= must.ages[line]

    @given(access_sequences(), addresses)
    @settings(max_examples=300)
    def test_may_cache_soundness(self, sequence, probe):
        concrete = LRUCache(CONFIG)
        may = MayCache(CONFIG)
        for address in sequence:
            concrete.access(address)
            may.access(CONFIG.line_of(address))
        line = CONFIG.line_of(probe)
        if not may.may_contain(line):
            assert not concrete.contains(probe)
        elif concrete.contains(probe):
            assert concrete.age_of(probe) >= may.ages.get(line, 0)

    @given(access_sequences())
    @settings(max_examples=200)
    def test_classification_matches_concrete(self, sequence):
        """AH accesses hit and AM accesses miss in the concrete run."""
        concrete = LRUCache(CONFIG)
        abstract = TripleCacheState(CONFIG)
        for address in sequence:
            line = CONFIG.line_of(address)
            outcome = abstract.classify(line)
            hit = concrete.access(address)
            abstract.access(line)
            if outcome is Classification.ALWAYS_HIT:
                assert hit
            elif outcome is Classification.ALWAYS_MISS:
                assert not hit

    @given(access_sequences())
    @settings(max_examples=200)
    def test_persistence_soundness(self, sequence):
        """A PS-classified line misses at most once in the run."""
        concrete = LRUCache(CONFIG)
        abstract = TripleCacheState(CONFIG)
        miss_counts = {}
        persistent_lines = set()
        for address in sequence:
            line = CONFIG.line_of(address)
            outcome = abstract.classify(line)
            hit = concrete.access(address)
            abstract.access(line)
            if not hit:
                miss_counts[line] = miss_counts.get(line, 0) + 1
            if outcome is Classification.PERSISTENT:
                persistent_lines.add(line)
        # In straight-line execution persistence means: every access
        # classified PS occurs while the line cannot have been evicted
        # since first load, so the line's total misses stay at <= 1.
        for line in persistent_lines:
            assert miss_counts.get(line, 0) <= 1

    @given(access_sequences(), access_sequences(), addresses)
    @settings(max_examples=200)
    def test_join_soundness(self, seq_a, seq_b, probe):
        """The join over-approximates both branches."""
        concrete_a = LRUCache(CONFIG)
        abstract_a = TripleCacheState(CONFIG)
        for address in seq_a:
            concrete_a.access(address)
            abstract_a.access(CONFIG.line_of(address))
        abstract_b = TripleCacheState(CONFIG)
        concrete_b = LRUCache(CONFIG)
        for address in seq_b:
            concrete_b.access(address)
            abstract_b.access(CONFIG.line_of(address))
        joined = abstract_a.join(abstract_b)
        line = CONFIG.line_of(probe)
        if joined.must.contains(line):
            assert concrete_a.contains(probe)
            assert concrete_b.contains(probe)
        if not joined.may.may_contain(line):
            assert not concrete_a.contains(probe)
            assert not concrete_b.contains(probe)
