"""Unit and property tests for the strided-interval domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import INT_MAX, INT_MIN, StridedInterval, to_signed
from repro.analysis.strided import StridedInterval as SI


def si(lo, hi, stride=1):
    return SI(lo, hi, stride)


small_ints = st.integers(min_value=-300, max_value=300)


@st.composite
def strided(draw):
    lo = draw(small_ints)
    count = draw(st.integers(min_value=0, max_value=20))
    stride = draw(st.integers(min_value=0, max_value=8))
    if count == 0 or stride == 0:
        return SI(lo, lo, 0)
    return SI(lo, lo + count * stride, stride)


def members(value, cap=200):
    values = value.possible_values(cap)
    assert values is not None
    return values


class TestConstruction:
    def test_const(self):
        value = SI.const(7)
        assert value.as_constant() == 7
        assert value.stride == 0

    def test_canonicalises_hi_to_phase(self):
        value = si(0, 10, 4)
        assert value.hi == 8
        assert members(value) == [0, 4, 8]

    def test_singleton_collapses_stride(self):
        assert si(5, 5, 4).stride == 0

    def test_bottom(self):
        assert si(3, 1).is_bottom()

    def test_contains_respects_phase(self):
        value = si(1, 9, 2)
        assert value.contains(3)
        assert not value.contains(4)

    def test_possible_values_limit(self):
        value = si(0, 1000, 1)
        assert value.possible_values(10) is None


class TestLattice:
    def test_join_alignment(self):
        a, b = si(0, 8, 4), si(2, 10, 4)
        joined = a.join(b)
        for x in members(a) + members(b):
            assert joined.contains(x)
        assert joined.stride == 2   # gcd(4, 4, |0-2|)

    def test_join_preserves_common_stride(self):
        a, b = si(0, 16, 4), si(20, 28, 4)
        assert a.join(b).stride == 4

    def test_meet_aligns_phase(self):
        a = si(0, 40, 4)
        b = si(10, 30, 1)
        met = a.meet(b)
        assert met.lo == 12
        assert met.hi == 28
        assert met.stride == 4

    def test_meet_disjoint_is_bottom(self):
        assert si(0, 4, 4).meet(si(9, 11, 1)).is_bottom()

    @given(strided(), strided())
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.leq(joined)
        assert b.leq(joined)

    @given(strided(), strided(), small_ints)
    def test_join_soundness(self, a, b, x):
        if a.contains(x) or b.contains(x):
            assert a.join(b).contains(x)

    @given(strided(), strided(), small_ints)
    def test_meet_soundness(self, a, b, x):
        if a.contains(x) and b.contains(x):
            assert a.meet(b).contains(x)

    @given(strided(), strided())
    def test_widen_is_upper_bound(self, a, b):
        widened = a.widen(b)
        assert a.leq(widened), (a, b, widened)
        assert b.leq(widened), (a, b, widened)

    def test_widening_terminates(self):
        current = si(0, 0, 0)
        previous = None
        for i in range(200):
            previous = current
            current = current.widen(si(0, 4 * (i + 1), 4))
            if current == previous:
                break
        assert current == previous

    @given(strided(), strided())
    def test_leq_transitive_with_join(self, a, b):
        assert a.leq(a)
        joined = a.join(b)
        assert joined.join(a) == joined


class TestArithmetic:
    def test_add_keeps_gcd_stride(self):
        result = si(0, 8, 4).add(si(100, 108, 4))
        assert result.stride == 4
        assert (result.lo, result.hi) == (100, 116)

    def test_shl_scales_stride(self):
        result = si(0, 7, 1).shl(SI.const(2))
        assert result.stride == 4
        assert (result.lo, result.hi) == (0, 28)

    def test_mul_by_constant_scales_stride(self):
        result = si(0, 5, 1).mul(SI.const(8))
        assert result.stride == 8
        assert (result.lo, result.hi) == (0, 40)

    def test_overflow_to_top(self):
        assert si(INT_MAX - 1, INT_MAX, 1).add(SI.const(2)).is_top()

    @given(strided(), strided(), small_ints, small_ints)
    @settings(max_examples=300)
    def test_soundness_against_concrete(self, a, b, x, y):
        if not (a.contains(x) and b.contains(y)):
            return
        assert a.add(b).contains(to_signed(x + y))
        assert a.sub(b).contains(to_signed(x - y))
        assert a.mul(b).contains(to_signed(x * y))
        assert a.bitand(b).contains(to_signed(x & y))
        assert a.bitor(b).contains(to_signed(x | y))
        assert a.bitxor(b).contains(to_signed(x ^ y))

    @given(strided(), st.integers(min_value=0, max_value=8), small_ints)
    @settings(max_examples=200)
    def test_shift_soundness(self, a, shift, x):
        if not a.contains(x):
            return
        amount = SI.const(shift)
        assert a.shl(amount).contains(to_signed(x << shift))
        assert a.asr(amount).contains(to_signed(x >> shift))


class TestRefinement:
    def test_refine_lt_snaps_to_phase(self):
        value = si(0, 28, 4)
        refined = value.refine_signed("<", SI.const(11))
        assert refined == si(0, 8, 4)

    def test_refine_ge_snaps_up(self):
        value = si(0, 28, 4)
        refined = value.refine_signed(">=", SI.const(5))
        assert refined.lo == 8

    def test_refine_ne_steps_by_stride(self):
        value = si(0, 12, 4)
        assert value.refine_signed("!=", SI.const(0)) == si(4, 12, 4)

    @given(strided(), strided(),
           st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
           small_ints)
    @settings(max_examples=300)
    def test_refinement_soundness(self, a, b, op, x):
        import operator
        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
               ">=": operator.ge, "==": operator.eq, "!=": operator.ne}
        if not a.contains(x) or b.is_bottom():
            return
        witnesses = members(b, cap=50) if b.possible_values(50) else \
            [b.lo, b.hi]
        if any(ops[op](x, y) for y in witnesses):
            assert a.refine_signed(op, b).contains(x)


class TestEndToEndWithAnalysis:
    def test_strided_addresses_in_loop(self):
        from repro.isa import assemble
        from repro.cfg import build_cfg, expand_task
        from repro.analysis import analyze_values

        source = """
        main:
            MOVI R0, #0
            LDA R1, arr
        loop:
            SHLI R3, R0, #3      ; scale by 8: every other word
            LDR R2, [R1, R3]
            ADDI R0, R0, #1
            CMPI R0, #8
            BLT loop
            HALT
        .data
        arr: .space 256
        """
        graph = expand_task(build_cfg(assemble(source)))
        values = analyze_values(graph, domain=StridedInterval)
        loads = [a for a in values.accesses
                 if a.instruction.opcode.name == "LDRX"]
        assert loads
        for access in loads:
            enumerated = access.address.possible_values(64)
            assert enumerated is not None
            # Stride 8: consecutive possible addresses differ by 8.
            diffs = {b - a for a, b in zip(enumerated, enumerated[1:])}
            assert diffs == {8}

    def test_wcet_pipeline_works_with_strided_domain(self):
        from repro.lang import compile_program
        from repro.sim import run_program
        from repro.wcet import analyze_wcet

        source = """
        int a[32];
        int r;
        void main() {
            int i;
            for (i = 0; i < 16; i = i + 1) {
                a[i * 2] = i;
            }
            r = a[0];
        }
        """
        program = compile_program(source)
        result = analyze_wcet(program, domain=StridedInterval)
        execution = run_program(program)
        assert result.wcet_cycles >= execution.cycles

    def test_strided_never_looser_than_interval_on_wcet(self):
        from repro.workloads import analyze_workload, get_workload
        for name in ("matmult", "fir"):
            workload = get_workload(name)
            interval = analyze_workload(workload)
            stride = analyze_workload(workload, domain=StridedInterval)
            assert stride.wcet_cycles <= interval.wcet_cycles
