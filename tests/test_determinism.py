"""Analysis determinism: the property the parallel sweep relies on.

The batch engine assumes that analyzing the same (program, config,
policy, model) point always produces the same artifacts — in any
process, under any hash seed, in any job order.  These tests pin that
down: the same workload analyzed twice in-process, and once in a
subprocess with a *different* ``PYTHONHASHSEED``, must yield an
identical bound, identical classification counts, and an identical
text report (modulo wall-clock lines).
"""

import json
import os
import subprocess
import sys

from repro.cfg.contexts import make_policy
from repro.report import wcet_report
from repro.workloads.suite import analyze_workload, get_workload

#: A workload exercising calls, loops, manual annotations, and input
#: memory ranges, analyzed under the most machinery (VIVU + krisc5).
WORKLOAD = "bs"
POLICY = ("vivu", {"peel": 1})
MODEL = "krisc5"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_SUBPROCESS_SCRIPT = """
import json, sys
from repro.cfg.contexts import make_policy
from repro.report import wcet_report
from repro.workloads.suite import analyze_workload, get_workload

result = analyze_workload(get_workload(%(workload)r),
                          context_policy=make_policy(%(policy)r,
                                                     peel=%(peel)d),
                          pipeline_model=%(model)r)
report = "\\n".join(line for line in wcet_report(result).splitlines()
                    if " ms" not in line)
json.dump({
    "bound": result.wcet_cycles,
    "icache": [result.icache.stats.always_hit,
               result.icache.stats.always_miss,
               result.icache.stats.persistent,
               result.icache.stats.not_classified],
    "dcache": [result.dcache.stats.always_hit,
               result.dcache.stats.always_miss,
               result.dcache.stats.persistent,
               result.dcache.stats.not_classified],
    "report": report,
}, sys.stdout)
"""


def _analyze():
    name, params = POLICY
    return analyze_workload(get_workload(WORKLOAD),
                            context_policy=make_policy(name, **params),
                            pipeline_model=MODEL)


def _summary(result):
    report = "\n".join(line for line in wcet_report(result).splitlines()
                       if " ms" not in line)
    return {
        "bound": result.wcet_cycles,
        "icache": [result.icache.stats.always_hit,
                   result.icache.stats.always_miss,
                   result.icache.stats.persistent,
                   result.icache.stats.not_classified],
        "dcache": [result.dcache.stats.always_hit,
                   result.dcache.stats.always_miss,
                   result.dcache.stats.persistent,
                   result.dcache.stats.not_classified],
        "report": report,
    }


def test_repeated_in_process_analysis_is_identical():
    first = _summary(_analyze())
    second = _summary(_analyze())
    assert first == second


def test_subprocess_with_different_hash_seed_is_identical():
    in_process = _summary(_analyze())

    current_seed = os.environ.get("PYTHONHASHSEED")
    seed = "4242" if current_seed != "4242" else "2424"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    script = _SUBPROCESS_SCRIPT % {
        "workload": WORKLOAD, "policy": POLICY[0],
        "peel": POLICY[1]["peel"], "model": MODEL}
    completed = subprocess.run(
        [sys.executable, "-c", script], env=env, cwd=REPO_ROOT,
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    subprocess_summary = json.loads(completed.stdout)

    assert subprocess_summary == in_process
