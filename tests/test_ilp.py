"""Tests for the simplex and branch-and-bound solvers, cross-checked
against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import LinearProgram, Sense, solve_ilp, solve_lp


def build(num_vars, objective, constraints, upper=None, integer=True):
    program = LinearProgram()
    variables = [program.add_variable(f"x{i}",
                                      upper=None if upper is None
                                      else upper[i],
                                      is_integer=integer)
                 for i in range(num_vars)]
    for i, coeff in enumerate(objective):
        program.set_objective_coefficient(variables[i], coeff)
    for coeffs, sense, rhs in constraints:
        program.add_constraint(
            {i: c for i, c in enumerate(coeffs)}, sense, rhs)
    return program


class TestSimplexBasics:
    def test_simple_maximisation(self):
        # max 3x + 2y st x + y <= 4, x <= 2
        program = build(2, [3, 2], [
            ([1, 1], Sense.LE, 4),
            ([1, 0], Sense.LE, 2),
        ])
        solution = solve_lp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(10)  # x=2, y=2

    def test_equality_constraint(self):
        program = build(2, [1, 1], [
            ([1, 1], Sense.EQ, 5),
            ([1, 0], Sense.LE, 3),
        ])
        solution = solve_lp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(5)

    def test_ge_constraint(self):
        # max -x st x >= 3  -> x = 3, objective -3.
        program = build(1, [-1], [([1], Sense.GE, 3)])
        solution = solve_lp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(-3)

    def test_infeasible(self):
        program = build(1, [1], [
            ([1], Sense.LE, 1),
            ([1], Sense.GE, 2),
        ])
        assert solve_lp(program).status == "infeasible"

    def test_unbounded(self):
        program = build(1, [1], [([-1], Sense.LE, 0)])
        assert solve_lp(program).status == "unbounded"

    def test_upper_bounds(self):
        program = build(1, [1], [], upper=[7])
        solution = solve_lp(program)
        assert solution.objective == pytest.approx(7)

    def test_lower_bound_shift(self):
        program = LinearProgram()
        x = program.add_variable("x", lower=2, upper=10)
        program.set_objective_coefficient(x, -1)
        solution = solve_lp(program)
        assert solution.is_optimal
        assert solution.value_of(x) == pytest.approx(2)
        assert solution.objective == pytest.approx(-2)

    def test_no_constraints_bounded(self):
        program = build(2, [5, -1], [], upper=[3, None])
        solution = solve_lp(program)
        assert solution.objective == pytest.approx(15)

    def test_degenerate_does_not_cycle(self):
        # Classic degenerate LP; Bland's rule must terminate.
        program = build(4, [0.75, -150, 0.02, -6], [
            ([0.25, -60, -0.04, 9], Sense.LE, 0),
            ([0.5, -90, -0.02, 3], Sense.LE, 0),
            ([0, 0, 1, 0], Sense.LE, 1),
        ], integer=False)
        solution = solve_lp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(0.05)


class TestAgainstScipy:
    @staticmethod
    def scipy_solve(objective, a_ub, b_ub, a_eq, b_eq, bounds):
        from scipy.optimize import linprog
        result = linprog(
            c=[-c for c in objective],
            A_ub=a_ub if a_ub else None, b_ub=b_ub if b_ub else None,
            A_eq=a_eq if a_eq else None, b_eq=b_eq if b_eq else None,
            bounds=bounds, method="highs")
        return result

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_lps_match_scipy(self, data):
        num_vars = data.draw(st.integers(1, 4))
        num_cons = data.draw(st.integers(1, 4))
        coeff = st.integers(-5, 5)
        objective = [data.draw(coeff) for _ in range(num_vars)]
        a_ub, b_ub = [], []
        for _ in range(num_cons):
            row = [data.draw(coeff) for _ in range(num_vars)]
            rhs = data.draw(st.integers(0, 20))
            a_ub.append(row)
            b_ub.append(rhs)
        upper = [data.draw(st.integers(1, 20)) for _ in range(num_vars)]

        program = build(num_vars, objective,
                        [(row, Sense.LE, rhs)
                         for row, rhs in zip(a_ub, b_ub)],
                        upper=upper, integer=False)
        mine = solve_lp(program)
        reference = self.scipy_solve(
            objective, a_ub, b_ub, [], [],
            [(0, u) for u in upper])
        if reference.status == 0:
            assert mine.is_optimal
            assert mine.objective == pytest.approx(-reference.fun,
                                                   abs=1e-6)
        elif reference.status == 2:
            assert mine.status == "infeasible"
        elif reference.status == 3:  # pragma: no cover
            assert mine.status == "unbounded"


class TestBranchAndBound:
    def test_integral_relaxation_passes_through(self):
        program = build(2, [3, 2], [
            ([1, 1], Sense.LE, 4),
            ([1, 0], Sense.LE, 2),
        ])
        solution, stats = solve_ilp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(10)
        assert stats.nodes_explored == 1

    def test_fractional_relaxation_branches(self):
        # max x + y st 2x + 2y <= 5: LP optimum 2.5, ILP optimum 2.
        program = build(2, [1, 1], [([2, 2], Sense.LE, 5)])
        solution, _stats = solve_ilp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(2)
        assert solution.is_integral()

    def test_knapsack(self):
        # Classic 0/1 knapsack: values 10,13,7; weights 3,4,2; cap 6.
        program = build(3, [10, 13, 7], [([3, 4, 2], Sense.LE, 6)],
                        upper=[1, 1, 1])
        solution, _stats = solve_ilp(program)
        assert solution.objective == pytest.approx(20)   # items 2+3

    def test_infeasible_ilp(self):
        program = build(1, [1], [
            ([2], Sense.GE, 1),
            ([2], Sense.LE, 1),
        ])
        solution, _stats = solve_ilp(program)
        assert solution.status == "infeasible"

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_ilps_match_scipy_milp(self, data):
        from scipy.optimize import milp, LinearConstraint, Bounds
        num_vars = data.draw(st.integers(1, 3))
        objective = [data.draw(st.integers(-4, 4))
                     for _ in range(num_vars)]
        row = [data.draw(st.integers(1, 4)) for _ in range(num_vars)]
        rhs = data.draw(st.integers(1, 15))
        upper = [data.draw(st.integers(1, 8)) for _ in range(num_vars)]

        program = build(num_vars, objective, [(row, Sense.LE, rhs)],
                        upper=upper)
        mine, _stats = solve_ilp(program)

        result = milp(
            c=[-c for c in objective],
            constraints=[LinearConstraint([row], ub=[rhs])],
            bounds=Bounds([0] * num_vars, upper),
            integrality=[1] * num_vars)
        assert mine.is_optimal == result.success
        if result.success:
            assert mine.objective == pytest.approx(-result.fun, abs=1e-6)
