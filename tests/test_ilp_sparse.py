"""Tests for the sparse LP/ILP engine.

Differential coverage against the retained dense tableau
(:func:`repro.ilp.solve_lp_dense`) on every IPET program the workload
suite generates, randomized LP property tests, a degenerate/cycling
regression exercising the Bland fallback, presolve unit tests, and the
chain-contraction / solver-stats plumbing of path analysis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (ILPStats, LinearProgram, Sense, presolve,
                       solve_ilp, solve_lp, solve_lp_dense)
from repro.path.ipet import PathAnalysis
from repro.report.text import wcet_report
from repro.workloads.suite import (WORKLOADS, analyze_workload,
                                   get_workload, workload_names)


def build(num_vars, objective, constraints, upper=None, lower=None,
          integer=True):
    program = LinearProgram()
    variables = [program.add_variable(
        f"x{i}",
        lower=0.0 if lower is None else lower[i],
        upper=None if upper is None else upper[i],
        is_integer=integer) for i in range(num_vars)]
    for i, coeff in enumerate(objective):
        program.set_objective_coefficient(variables[i], coeff)
    for coeffs, sense, rhs in constraints:
        program.add_constraint(
            {i: c for i, c in enumerate(coeffs)}, sense, rhs)
    return program


def ipet_program(result, contract):
    """Rebuild the IPET program of an analyzed task."""
    analysis = PathAnalysis(result.graph, result.timing,
                            result.loop_bounds, result.values,
                            use_infeasible_paths=True,
                            contract_chains=contract)
    return analysis._build_program()[0]


class TestWorkloadDifferential:
    """Old-dense vs new-sparse on every IPET program the suite builds,
    both with and without chain contraction."""

    @pytest.mark.parametrize("name", workload_names())
    def test_dense_and_sparse_agree(self, name):
        result = analyze_workload(get_workload(name))
        reference = result.path.lp_bound
        for contract in (False, True):
            program = ipet_program(result, contract)
            dense = solve_lp_dense(program)
            sparse = solve_lp(program)
            assert dense.status == sparse.status == "optimal"
            assert sparse.objective == pytest.approx(dense.objective,
                                                     abs=1e-6)
            # Contraction must not change the optimum either.
            assert sparse.objective == pytest.approx(reference, abs=1e-6)

    #: branchy is all branch diamonds — nothing contracts, which is
    #: itself worth pinning down alongside the chain-heavy kernels.
    CONTRACTION_CASES = {"fibcall": True, "calltree": True,
                         "branchy": False}

    def test_contraction_preserves_bound_and_witness(self):
        for name, shrinks in self.CONTRACTION_CASES.items():
            result = analyze_workload(get_workload(name))
            plain = PathAnalysis(result.graph, result.timing,
                                 result.loop_bounds, result.values,
                                 contract_chains=False).solve()
            packed = PathAnalysis(result.graph, result.timing,
                                  result.loop_bounds, result.values,
                                  contract_chains=True).solve()
            assert packed.wcet_cycles == plain.wcet_cycles
            assert packed.lp_bound == pytest.approx(plain.lp_bound,
                                                    abs=1e-6)
            assert packed.path.node_counts == plain.path.node_counts
            assert packed.path.edge_counts == plain.path.edge_counts
            if shrinks:
                assert packed.lp_supernodes < plain.lp_supernodes
                assert packed.num_variables < plain.num_variables
            else:
                assert packed.lp_supernodes == plain.lp_supernodes

    def test_contraction_covers_all_executed_nodes(self):
        result = analyze_workload(get_workload("matmult"))
        counts = result.path.path.node_counts
        assert counts[result.graph.entry] == 1
        # Flow conservation survives witness expansion: per-node count
        # equals the inflow along the witness edges.
        for node, count in counts.items():
            if node == result.graph.entry:
                continue
            inflow = sum(
                result.path.path.edge_counts.get(
                    (e.source, e.target, e.kind), 0)
                for e in result.graph.predecessors(node))
            assert inflow == count


class TestRandomPrograms:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_lps_dense_vs_sparse(self, data):
        num_vars = data.draw(st.integers(1, 5))
        num_cons = data.draw(st.integers(0, 5))
        coeff = st.integers(-5, 5)
        objective = [data.draw(coeff) for _ in range(num_vars)]
        lower = [data.draw(st.integers(0, 3)) for _ in range(num_vars)]
        upper = [data.draw(st.one_of(
            st.none(), st.integers(0, 12).map(lambda d: d)))
            for _ in range(num_vars)]
        upper = [None if u is None else lower[i] + u
                 for i, u in enumerate(upper)]
        constraints = []
        for _ in range(num_cons):
            row = [data.draw(coeff) for _ in range(num_vars)]
            sense = data.draw(st.sampled_from(
                [Sense.LE, Sense.GE, Sense.EQ]))
            rhs = data.draw(st.integers(-10, 20))
            constraints.append((row, sense, rhs))

        program = build(num_vars, objective, constraints, upper=upper,
                        lower=lower, integer=False)
        dense = solve_lp_dense(program)
        sparse = solve_lp(program)
        assert dense.status == sparse.status
        if dense.is_optimal:
            assert sparse.objective == pytest.approx(dense.objective,
                                                     abs=1e-6)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_always_bland_matches_default_pricing(self, data):
        num_vars = data.draw(st.integers(1, 4))
        objective = [data.draw(st.integers(-4, 4))
                     for _ in range(num_vars)]
        constraints = []
        for _ in range(data.draw(st.integers(1, 4))):
            row = [data.draw(st.integers(-3, 4)) for _ in range(num_vars)]
            constraints.append((row, Sense.LE,
                                data.draw(st.integers(0, 15))))
        program = build(num_vars, objective, constraints,
                        upper=[8] * num_vars, integer=False)
        default = solve_lp(program)
        bland = solve_lp(program, bland_threshold=0)
        assert default.status == bland.status
        if default.is_optimal:
            assert bland.objective == pytest.approx(default.objective,
                                                    abs=1e-6)


class TestDegenerateRegression:
    """Beale's classic cycling LP: Dantzig pricing alone can cycle on
    it; the Bland fallback must terminate at the optimum."""

    BEALE = ([0.75, -150, 0.02, -6],
             [([0.25, -60, -0.04, 9], Sense.LE, 0),
              ([0.5, -90, -0.02, 3], Sense.LE, 0),
              ([0, 0, 1, 0], Sense.LE, 1)])

    def test_degenerate_terminates_with_fallback(self):
        objective, constraints = self.BEALE
        program = build(4, objective, constraints, integer=False)
        solution = solve_lp(program)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(0.05)

    def test_forced_bland_mode_exercises_fallback(self):
        objective, constraints = self.BEALE
        program = build(4, objective, constraints, integer=False)
        stats = ILPStats()
        solution = solve_lp(program, stats=stats, bland_threshold=0)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(0.05)
        assert stats.bland_pivots > 0


class TestPresolve:
    def test_singleton_equality_fixes_variable(self):
        program = build(2, [1, 1], [
            ([1, 0], Sense.EQ, 3),
            ([1, 1], Sense.LE, 10),
        ], integer=False)
        stats = ILPStats()
        solution = solve_lp(program, stats=stats)
        assert solution.objective == pytest.approx(10)
        assert solution.values[0] == pytest.approx(3)
        assert stats.presolve_rows_removed >= 1
        assert stats.presolve_cols_removed >= 1

    def test_zero_fix_cascades_through_flow_rows(self):
        # x0 == 0 pins x1 via x1 - x0 == 0, then x2 via x2 - x1 == 0 —
        # the infeasible/unreachable cascade of IPET programs.
        program = build(3, [1, 1, 1], [
            ([1, 0, 0], Sense.EQ, 0),
            ([-1, 1, 0], Sense.EQ, 0),
            ([0, -1, 1], Sense.EQ, 0),
        ], upper=[5, 5, 5], integer=False)
        pre = presolve(program)
        assert pre.num_rows == 0
        solution = solve_lp(program)
        assert solution.objective == pytest.approx(0)
        assert all(solution.values[i] == pytest.approx(0)
                   for i in range(3))

    def test_doubleton_substitution_postsolves(self):
        # max x st x - y == 0, y <= 4: presolve aliases x to y.
        program = build(2, [1, 0], [
            ([1, -1], Sense.EQ, 0),
            ([0, 1], Sense.LE, 4),
        ], integer=False)
        pre = presolve(program)
        assert pre.substitutions
        solution = solve_lp(program)
        assert solution.objective == pytest.approx(4)
        assert solution.values[0] == pytest.approx(4)
        assert solution.values[1] == pytest.approx(4)

    def test_conflicting_singletons_infeasible(self):
        program = build(1, [1], [
            ([1], Sense.GE, 2),
            ([1], Sense.LE, 1),
        ], integer=False)
        assert solve_lp(program).status == "infeasible"

    def test_integral_mode_rounds_bounds(self):
        # max x st 2x <= 5: LP optimum 2.5, ILP optimum 2; both reached
        # purely in presolve.
        program = build(1, [1], [([2], Sense.LE, 5)], upper=[9])
        relaxed = solve_lp(program)
        assert relaxed.objective == pytest.approx(2.5)
        solution, _stats = solve_ilp(program)
        assert solution.objective == pytest.approx(2)


class TestWarmStartedBranchAndBound:
    def test_branching_warm_starts_from_parent_basis(self):
        # Fractional relaxation across two knapsack rows: needs real
        # branching, and every non-root node should warm start.
        program = build(3, [5, 4, 3], [
            ([2, 3, 1], Sense.LE, 5),
            ([4, 1, 2], Sense.LE, 11),
        ], upper=[3, 3, 3])
        stats = ILPStats()
        solution, bstats = solve_ilp(program, stats=stats)
        assert solution.is_optimal
        assert solution.is_integral()
        assert bstats.nodes_explored == stats.bb_nodes
        if stats.bb_nodes > 1:
            assert stats.warm_start_hits + stats.cold_solves \
                >= stats.bb_nodes

    def test_node_budget_still_enforced(self):
        program = build(2, [1, 1], [([2, 2], Sense.LE, 5)])
        with pytest.raises(RuntimeError):
            solve_ilp(program, max_nodes=0)


class TestSolverStatsPlumbing:
    def test_path_stats_surface_through_wcet_result(self):
        result = analyze_workload(get_workload("calltree"))
        stats = result.solver_stats["path"]
        assert isinstance(stats, ILPStats)
        assert stats.pivots > 0
        assert stats.presolve_rows_removed > 0
        assert stats.bb_nodes == 0      # IPET relaxations are integral
        as_dict = stats.as_dict()
        assert as_dict["pivots"] == stats.pivots
        assert result.path.graph_nodes == result.graph.node_count()
        assert 0 < result.path.lp_supernodes <= result.path.graph_nodes

    def test_presolve_alone_solves_tiny_programs(self):
        # fibcall's whole IPET program reduces away: the bound is
        # proved without a single simplex pivot.
        result = analyze_workload(get_workload("fibcall"))
        stats = result.solver_stats["path"]
        assert stats.pivots == 0
        assert stats.presolve_rows_removed > 0

    def test_report_renders_solver_counters(self):
        result = analyze_workload(get_workload("fibcall"))
        report = wcet_report(result)
        assert "chain contraction" in report
        assert "solver:" in report
        assert "presolve removed" in report


class TestLargeProgramGenerator:
    def test_generates_thousands_of_instructions(self):
        from repro.cfg.builder import build_cfg
        from repro.lang import compile_program
        from repro.workloads.synthetic import generate_large_source

        program = compile_program(generate_large_source())
        cfg = build_cfg(program)
        assert cfg.total_instructions() >= 2000

    def test_small_instance_analyzes_exactly(self):
        from repro.lang import compile_program
        from repro.wcet import analyze_wcet
        from repro.workloads.synthetic import generate_large_source

        program = compile_program(
            generate_large_source(depth=1, fanout=2, loop_iterations=4))
        result = analyze_wcet(program)
        assert result.wcet_cycles > 0
        assert result.path.integral
