"""Tests for the pluggable context-sensitivity engine.

Covers the acceptance criteria of the context-policy PR:

* structured :class:`Context` semantics (tuple compatibility, ordering,
  peel queries),
* differential equivalence: the explicit :class:`FullCallString`
  policy reproduces the default pipeline bit-identically on the
  workload corpus,
* VIVU loop peeling strictly tightens loop-heavy benchmarks while
  every bound still dominates the cycle-accurate simulator,
* k-limited call strings bound expansion on deep call trees where
  full call strings grow multiplicatively,
* deterministic expansion (sorted call/return wiring) and the
  :class:`ExpansionError` recursion diagnostics.
"""

import pytest

from repro.cache.config import CacheConfig, MachineConfig
from repro.cfg import (Context, ExpansionError, FullCallString,
                       KLimitedCallString, VIVU, build_cfg, expand_task,
                       make_policy)
from repro.isa import assemble
from repro.lang import compile_program
from repro.sim import run_program
from repro.verify import verify_bounds
from repro.wcet import analyze_wcet
from repro.workloads import analyze_workload, get_workload


# -- Context semantics ----------------------------------------------------------


class TestContext:
    def test_tuple_compatibility(self):
        ctx = Context((0x10, 0x20))
        assert len(ctx) == 2
        assert ctx[-1] == 0x20
        assert ctx[:-1] == (0x10,)
        assert list(ctx) == [0x10, 0x20]
        assert ctx == (0x10, 0x20)
        assert Context() == ()

    def test_hash_consistent_with_tuple_equality(self):
        ctx = Context((0x10, 0x20))
        assert hash(ctx) == hash((0x10, 0x20))
        assert ctx in {(0x10, 0x20)}

    def test_iteration_component_distinguishes_copies(self):
        plain = Context((0x10,))
        peeled = Context((0x10,), ((0x40, 0), ))
        steady = Context((0x10,), ((0x40, 1), ))
        assert plain != peeled and peeled != steady
        assert len({plain, peeled, steady}) == 3
        # A context with iterations is not equal to its bare call tuple.
        assert peeled != (0x10,)

    def test_total_order(self):
        contexts = [Context((0x10,), ((0x40, 1),)),
                    Context((0x10,), ((0x40, 0),)),
                    Context(()), Context((0x10,))]
        ordered = sorted(contexts)
        assert ordered[0] == Context(())
        assert ordered[1] == Context((0x10,))
        assert ordered[2].iters == ((0x40, 0),)

    def test_peel_queries_and_label(self):
        ctx = Context((0x10,), ((0x40, 0), (0x60, 1)))
        assert ctx.peel_of(0x40) == 0
        assert ctx.peel_of(0x60) == 1
        assert ctx.peel_of(0x99) == 0
        assert ctx.has_phase_below(1)
        assert ctx.with_phase(0x40, 1).iters == ((0x40, 1), (0x60, 1))
        assert "it0" in ctx.label and ctx.label.startswith("10")
        assert Context().label == "root"

    def test_make_policy(self):
        assert isinstance(make_policy("full"), FullCallString)
        assert make_policy("klimited").k == 2
        assert make_policy("klimited", k=3).k == 3
        assert make_policy("vivu", peel=2).peel == 2
        assert make_policy("vivu").k is None
        combined = make_policy("vivu", k=3)
        assert combined.peel == 1 and combined.k == 3
        with pytest.raises(ValueError):
            make_policy("nonsense")
        with pytest.raises(ValueError):
            KLimitedCallString(0)
        with pytest.raises(ValueError):
            VIVU(peel=0)


# -- Differential baseline ------------------------------------------------------


#: Representative slice of the E1-E8 workload corpus (loop nests,
#: calls, annotations, data-dependent control flow).
DIFFERENTIAL_WORKLOADS = ("fibcall", "insertsort", "bsort", "matmult",
                          "crc", "fir", "bs", "ns", "cnt", "statemate",
                          "edn", "calltree", "duff", "fdct", "janne",
                          "lcdnum")


class TestFullCallStringDifferential:
    @pytest.mark.parametrize("name", DIFFERENTIAL_WORKLOADS)
    def test_explicit_policy_matches_default(self, name):
        workload = get_workload(name)
        default = analyze_workload(workload)
        explicit = analyze_workload(workload,
                                    context_policy=FullCallString())
        assert explicit.wcet_cycles == default.wcet_cycles
        assert {h: b.max_iterations
                for h, b in explicit.loop_bounds.items()} \
            == {h: b.max_iterations
                for h, b in default.loop_bounds.items()}
        for attr in ("always_hit", "always_miss", "persistent",
                     "not_classified"):
            assert getattr(explicit.icache.stats, attr) \
                == getattr(default.icache.stats, attr)
            assert getattr(explicit.dcache.stats, attr) \
                == getattr(default.dcache.stats, attr)
        assert explicit.graph.node_count() == default.graph.node_count()
        assert explicit.graph.edge_count() == default.graph.edge_count()


# -- VIVU loop peeling ----------------------------------------------------------


class TestVIVUStructure:
    LOOP = """
    main:
        MOVI R0, #0
    loop:
        ADDI R0, R0, #1
        CMPI R0, #5
        BLT loop
        HALT
    """

    def test_peeling_creates_first_iteration_copy(self):
        binary = build_cfg(assemble(self.LOOP))
        graph = expand_task(binary, policy=VIVU(peel=1))
        header = binary.program.symbols["loop"]
        copies = [n for n in graph.nodes() if n.block == header]
        assert len(copies) == 2
        phases = {n.context.peel_of(header) for n in copies}
        assert phases == {0, 1}
        assert len(graph.peeled_contexts()) == 1

    def test_peeled_copy_is_acyclic_prologue(self):
        from repro.cfg import find_loops
        binary = build_cfg(assemble(self.LOOP))
        graph = expand_task(binary, policy=VIVU(peel=1))
        forest = find_loops(graph.entry, graph.adjacency())
        # Only the steady-state copy remains a natural loop, and its
        # bound accounts for the peeled iteration.
        assert len(forest) == 1
        (loop,) = forest
        header = binary.program.symbols["loop"]
        assert loop.header.context.peel_of(header) == 1
        result = analyze_wcet(assemble(self.LOOP),
                              context_policy=VIVU(peel=1))
        (bound,) = result.loop_bounds.values()
        assert bound.max_iterations == 4    # 5 total = 1 peeled + 4

    def test_peel_two_chains_phases(self):
        binary = build_cfg(assemble(self.LOOP))
        graph = expand_task(binary, policy=VIVU(peel=2))
        header = binary.program.symbols["loop"]
        copies = [n for n in graph.nodes() if n.block == header]
        assert {n.context.peel_of(header) for n in copies} == {0, 1, 2}
        result = analyze_wcet(assemble(self.LOOP),
                              context_policy=VIVU(peel=2))
        execution = run_program(assemble(self.LOOP))
        assert result.wcet_cycles >= execution.cycles

    def test_manual_bound_accounts_for_peeled_iteration(self):
        source = """
        main:
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """
        program = assemble(source)
        header = program.symbols["loop"]
        vivu = analyze_wcet(program, manual_loop_bounds={header: 20},
                            context_policy=VIVU(peel=1))
        full = analyze_wcet(program, manual_loop_bounds={header: 20})
        (bound,) = vivu.loop_bounds.values()
        assert bound.max_iterations == 19   # steady copy: 20 - 1 peeled
        # Total accounting is unchanged: same bound as the baseline.
        assert vivu.wcet_cycles == full.wcet_cycles
        execution = run_program(program, arguments={0: 20})
        assert vivu.wcet_cycles >= execution.cycles


class TestVIVUPrecision:
    #: E8-family pattern: a loop whose first iteration takes an
    #: expensive initialisation branch.  Unpeeled, every iteration must
    #: assume the expensive path; the steady-state copy proves i != 0
    #: and prunes it.
    FIRST_ITERATION_BRANCH = """
    main:
        MOVI R0, #0
        MOVI R1, #0
    loop:
        CMPI R0, #0
        BNE skip
        MUL R2, R2, R2
        MUL R2, R2, R2
        MUL R2, R2, R2
        MUL R2, R2, R2
        MUL R2, R2, R2
        MUL R2, R2, R2
    skip:
        ADDI R0, R0, #1
        CMPI R0, #20
        BLT loop
        HALT
    """

    #: E3-family pattern: an outer loop alternating two inner loops
    #: whose combined code exceeds a tiny I-cache.  Persistence fails
    #: (lines genuinely evicted across outer iterations), so the
    #: unpeeled analysis charges a miss on every inner iteration; the
    #: first-iteration copies absorb the compulsory misses and the
    #: steady-state copies classify ALWAYS_HIT.
    CACHE_CONTENTION = """
    main:
        MOVI R0, #0
    outer:
        MOVI R1, #0
    ia:
        ADDI R2, R2, #1
        ADDI R3, R3, #2
        ADDI R2, R2, #3
        ADDI R3, R3, #4
        ADDI R2, R2, #5
        ADDI R3, R3, #6
        ADDI R1, R1, #1
        CMPI R1, #8
        BLT ia
        MOVI R1, #0
    ib:
        ADDI R4, R4, #1
        ADDI R5, R5, #2
        ADDI R4, R4, #3
        ADDI R5, R5, #4
        ADDI R4, R4, #5
        ADDI R5, R5, #6
        ADDI R1, R1, #1
        CMPI R1, #8
        BLT ib
        ADDI R0, R0, #1
        CMPI R0, #4
        BLT outer
        HALT
    """

    TINY_ICACHE = MachineConfig(icache=CacheConfig(
        num_sets=2, associativity=2, line_size=16, miss_penalty=10))

    def test_first_iteration_branch_pruned_in_steady_state(self):
        program = assemble(self.FIRST_ITERATION_BRANCH)
        full = analyze_wcet(program)
        vivu = analyze_wcet(program, context_policy=VIVU(peel=1))
        assert vivu.wcet_cycles < full.wcet_cycles
        report = verify_bounds(program, vivu)
        assert report.ok, [str(v) for v in report.violations]
        # The steady-state copy proves i >= 1: the expensive arm is
        # executed at most once on the worst-case path.
        execution = run_program(program)
        assert vivu.wcet_cycles <= full.wcet_cycles * 0.6
        assert vivu.wcet_cycles >= execution.cycles

    def test_cache_contention_steady_state_hits(self):
        program = assemble(self.CACHE_CONTENTION)
        full = analyze_wcet(program, config=self.TINY_ICACHE)
        vivu = analyze_wcet(program, config=self.TINY_ICACHE,
                            context_policy=VIVU(peel=1))
        assert vivu.wcet_cycles < full.wcet_cycles
        # The unpeeled analysis cannot classify the contended fetches.
        assert full.icache.stats.not_classified > 0
        assert vivu.icache.stats.not_classified == 0
        # Steady-state copies absorb no compulsory misses.
        split = vivu.icache.iteration_stats
        assert split is not None
        steady = split["steady-state"]
        assert steady.always_hit > 0
        assert steady.not_classified == 0
        report = verify_bounds(program, vivu,
                               max_steps=100_000)
        assert report.ok, [str(v) for v in report.violations]

    def test_vivu_exact_on_contention_program(self):
        # On this program the peeled analysis is cycle-exact.
        program = assemble(self.CACHE_CONTENTION)
        vivu = analyze_wcet(program, config=self.TINY_ICACHE,
                            context_policy=VIVU(peel=1))
        execution = run_program(program, config=self.TINY_ICACHE)
        assert vivu.wcet_cycles == execution.cycles

    @pytest.mark.parametrize("name", ("bsort", "matmult", "insertsort",
                                      "calltree", "edn"))
    def test_vivu_tightens_loop_heavy_workloads_soundly(self, name):
        workload = get_workload(name)
        full = analyze_workload(workload)
        vivu = analyze_workload(workload, context_policy=VIVU(peel=1))
        assert vivu.wcet_cycles < full.wcet_cycles
        report = verify_bounds(workload.compile(), vivu)
        assert report.ok, [str(v) for v in report.violations]

    def test_vivu_e7_family_tighter_and_sound(self):
        source = """
        int data[32]; int result;
        int stage0(int seed) {
            int acc = seed; int i;
            for (i = 0; i < 16; i = i + 1) {
                acc = acc + ((data[i] ^ seed) >> 1) + 1;
                data[i] = acc & 0xFFFF;
            }
            return acc;
        }
        void main() {
            int i;
            for (i = 0; i < 32; i = i + 1) { data[i] = i * 7; }
            int r = 1;
            r = stage0(r);
            r = stage0(r + 1);
            result = r;
        }
        """
        program = compile_program(source)
        full = analyze_wcet(program)
        vivu = analyze_wcet(program, context_policy=VIVU(peel=1))
        assert vivu.wcet_cycles < full.wcet_cycles
        report = verify_bounds(program, vivu)
        assert report.ok, [str(v) for v in report.violations]


# -- K-limited call strings -----------------------------------------------------


def deep_call_tree(levels):
    """A chain of functions each calling the next from two sites: full
    call strings grow as 2^levels, k-limited ones stay linear."""
    functions = []
    for level in range(levels):
        callee = f"f{level + 1}"
        functions.append(f"""
f{level}:
    PUSH {{LR}}
    BL {callee}
    BL {callee}
    POP {{LR}}
    RET""")
    return ("main:\n    BL f0\n    HALT\n" + "\n".join(functions)
            + f"\nf{levels}:\n    ADDI R0, R0, #1\n    RET\n")


class TestKLimitedCallString:
    def test_bounds_multiplicative_context_growth(self):
        sizes = {}
        for levels in (6, 8):
            binary = build_cfg(assemble(deep_call_tree(levels)))
            full = expand_task(binary)
            limited = expand_task(binary, policy=KLimitedCallString(2))
            sizes[levels] = (full.node_count(), limited.node_count())
        # Full call strings double per level; k=2 grows by a constant
        # number of instances per level.
        assert sizes[8][0] / sizes[6][0] > 3.5
        assert sizes[8][1] - sizes[6][1] <= 4 * 8   # ~constant per level
        assert sizes[8][1] < sizes[8][0] / 10

    def test_fits_under_cap_where_full_explodes(self):
        binary = build_cfg(assemble(deep_call_tree(12)))
        with pytest.raises(ExpansionError):
            expand_task(binary, max_contexts=500)
        limited = expand_task(binary, max_contexts=500,
                              policy=KLimitedCallString(2))
        assert limited.node_count() < 500

    def test_merged_instances_still_analyzable(self):
        # Value and cache analyses run to fixpoints over the merged
        # graph (call/return over-approximation is sound for them).
        from repro.analysis import analyze_values
        from repro.cache.analysis import analyze_icache
        binary = build_cfg(assemble(deep_call_tree(10)))
        graph = expand_task(binary, policy=KLimitedCallString(2))
        values = analyze_values(graph)
        assert len(values.reachable_nodes()) == graph.node_count()
        icache = analyze_icache(graph, CacheConfig())
        assert icache.stats.total == graph.instruction_count()

    def test_wcet_sound_on_shallow_merge(self):
        # With a single merge level the k-limited graph stays acyclic
        # and the end-to-end bound still dominates the simulator.
        program = assemble(deep_call_tree(2))
        full = analyze_wcet(program)
        limited = analyze_wcet(program,
                               context_policy=KLimitedCallString(2))
        execution = run_program(program)
        assert limited.wcet_cycles >= execution.cycles
        assert limited.wcet_cycles >= full.wcet_cycles


# -- Determinism and diagnostics ------------------------------------------------


CALLS = """
main:
    BL helper
    BL helper
    HALT
helper:
    PUSH {LR}
    MOVI R0, #1
    POP {LR}
    RET
"""


class TestExpansionDeterminism:
    def edge_trace(self, graph):
        return [(graph.node_key(e.source), graph.node_key(e.target),
                 e.kind)
                for node in graph.nodes()
                for e in graph.successors(node)]

    def test_repeated_expansion_is_identical(self):
        traces = []
        for _ in range(3):
            binary = build_cfg(assemble(CALLS))
            graph = expand_task(binary)
            traces.append(self.edge_trace(graph))
        assert traces[0] == traces[1] == traces[2]

    def test_call_return_wiring_in_sorted_instance_order(self):
        # Under k-limiting a merged callee instance returns to several
        # caller instances; the second expansion pass visits instances
        # in sorted order, so each exit's RETURN fan-out must come out
        # sorted — independent of set iteration order.
        from repro.cfg import EdgeKind
        binary = build_cfg(assemble(deep_call_tree(6)))
        graph = expand_task(binary, policy=KLimitedCallString(2))
        fanned_out = 0
        for node in graph.nodes():
            returns = [graph.node_key(e.target)
                       for e in graph.successors(node)
                       if e.kind is EdgeKind.RETURN]
            assert returns == sorted(returns)
            if len(returns) > 1:
                fanned_out += 1
        assert fanned_out > 0

    def test_vivu_expansion_deterministic(self):
        traces = []
        for _ in range(2):
            binary = build_cfg(assemble(CALLS))
            graph = expand_task(binary, policy=VIVU(peel=1))
            traces.append(self.edge_trace(graph))
        assert traces[0] == traces[1]


class TestRecursionDiagnostics:
    def test_direct_recursion_names_cycle(self):
        binary = build_cfg(assemble("""
        main:
            BL main
            HALT
        """))
        with pytest.raises(ExpansionError) as excinfo:
            expand_task(binary)
        assert "main -> main" in str(excinfo.value)

    def test_mutual_recursion_names_cycle(self):
        binary = build_cfg(assemble("""
        main:
            BL ping
            HALT
        ping:
            PUSH {LR}
            BL pong
            POP {LR}
            RET
        pong:
            PUSH {LR}
            BL ping
            POP {LR}
            RET
        """))
        with pytest.raises(ExpansionError) as excinfo:
            expand_task(binary)
        message = str(excinfo.value)
        assert "ping" in message and "pong" in message


# -- Report integration ---------------------------------------------------------


class TestPolicyReporting:
    def test_report_names_policy_and_peeled_contexts(self):
        from repro.report import wcet_report
        program = assemble(TestVIVUStructure.LOOP)
        result = analyze_wcet(program, context_policy=VIVU(peel=1))
        report = wcet_report(result)
        assert "vivu(peel=1)" in report
        assert "first-iteration" in report
        assert "(+1 peeled)" in report

    def test_cli_accepts_policy_flags(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        path = tmp_path / "task.s"
        path.write_text(TestVIVUStructure.LOOP)
        assert cli_main(["wcet", str(path),
                         "--context-policy", "vivu", "--peel", "1"]) == 0
        out = capsys.readouterr().out
        assert "vivu(peel=1)" in out
        assert cli_main(["wcet", str(path),
                         "--context-policy", "klimited", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "k-callstring(k=2)" in out

    def test_dot_export_unique_ids_for_peeled_copies(self):
        from repro.report import wcet_dot
        program = assemble(TestVIVUStructure.LOOP)
        result = analyze_wcet(program, context_policy=VIVU(peel=1))
        dot = wcet_dot(result)
        ids = [line.strip().split(" ")[0] for line in dot.splitlines()
               if "label=" in line and "->" not in line
               and not line.strip().startswith("graph ")]
        assert len(ids) == len(set(ids)) == result.graph.node_count()
