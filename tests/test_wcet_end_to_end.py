"""End-to-end WCET analysis tests: the verified bound must cover every
concrete execution (soundness obligation S1) and stay reasonably tight.
"""

import pytest

from repro.isa import assemble
from repro.cache.config import CacheConfig, MachineConfig
from repro.sim import run_program
from repro.wcet import analyze_wcet
from repro.path import UnboundedLoopError

CONFIG = MachineConfig.default()


def wcet_and_run(source, arguments=None, **kwargs):
    program = assemble(source)
    result = analyze_wcet(program, config=CONFIG, **kwargs)
    execution = run_program(program, config=CONFIG, arguments=arguments)
    return result, execution


class TestStraightLine:
    def test_bound_covers_and_is_exact_for_straightline(self):
        result, execution = wcet_and_run("""
        main:
            MOVI R0, #1
            ADDI R0, R0, #2
            MUL R0, R0, R0
            HALT
        """)
        assert result.wcet_cycles >= execution.cycles
        # Single path: the bound should be exact.
        assert result.wcet_cycles == execution.cycles

    def test_memory_program_exact(self):
        result, execution = wcet_and_run("""
        main:
            LDA R1, buf
            MOVI R0, #5
            STR R0, [R1]
            LDR R2, [R1]
            ADD R0, R0, R2
            HALT
        .data
        buf: .word 0
        """)
        assert result.wcet_cycles >= execution.cycles
        assert result.wcet_cycles == execution.cycles


class TestBranches:
    SOURCE = """
    main:
        CMPI R0, #10
        BGE big
        MOVI R1, #1
        MUL R1, R1, R1
        B end
    big:
        MOVI R1, #2
    end:
        HALT
    """

    def test_bound_covers_both_arms(self):
        program = assemble(self.SOURCE)
        result = analyze_wcet(program, config=CONFIG)
        for r0 in (0, 10, 5, 100):
            execution = run_program(program, config=CONFIG,
                                    arguments={0: r0})
            assert result.wcet_cycles >= execution.cycles, f"R0={r0}"

    def test_infeasible_path_pruning_tightens(self):
        source = """
        main:
            MOVI R0, #1
            CMPI R0, #5
            BGE expensive
            MOVI R1, #0
            B end
        expensive:
            MUL R2, R2, R2
            MUL R2, R2, R2
            MUL R2, R2, R2
            MUL R2, R2, R2
            MUL R2, R2, R2
            MUL R2, R2, R2
        end:
            HALT
        """
        program = assemble(source)
        with_pruning = analyze_wcet(program, config=CONFIG,
                                    use_infeasible_paths=True)
        without_pruning = analyze_wcet(program, config=CONFIG,
                                       use_infeasible_paths=False)
        execution = run_program(program, config=CONFIG)
        assert with_pruning.wcet_cycles >= execution.cycles
        # The dead expensive loop is excluded only with pruning.
        assert with_pruning.wcet_cycles < without_pruning.wcet_cycles


class TestLoops:
    def test_counted_loop_bound_close_to_actual(self):
        result, execution = wcet_and_run("""
        main:
            MOVI R0, #0
            MOVI R1, #0
        loop:
            ADDI R1, R1, #3
            ADDI R0, R0, #1
            CMPI R0, #25
            BLT loop
            HALT
        """)
        assert result.wcet_cycles >= execution.cycles
        # Tightness: within 20% for this simple shape.
        assert result.wcet_cycles <= execution.cycles * 1.2

    def test_nested_loops(self):
        result, execution = wcet_and_run("""
        main:
            MOVI R0, #0
        outer:
            MOVI R1, #0
        inner:
            ADDI R1, R1, #1
            CMPI R1, #6
            BLT inner
            ADDI R0, R0, #1
            CMPI R0, #4
            BLT outer
            HALT
        """)
        assert result.wcet_cycles >= execution.cycles
        assert result.wcet_cycles <= execution.cycles * 1.3

    def test_input_dependent_loop_worst_case(self):
        # Loop count depends on R0 in [1, 20]; the bound must cover the
        # worst input.
        source = """
        main:
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """
        program = assemble(source)
        result = analyze_wcet(program, config=CONFIG,
                              register_ranges={0: (1, 20)})
        worst = 0
        for r0 in (1, 5, 20):
            execution = run_program(program, config=CONFIG,
                                    arguments={0: r0})
            worst = max(worst, execution.cycles)
            assert result.wcet_cycles >= execution.cycles
        # Tight against the actual worst case.
        assert result.wcet_cycles <= worst * 1.2

    def test_unbounded_loop_raises(self):
        source = """
        main:
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """
        with pytest.raises(UnboundedLoopError):
            analyze_wcet(assemble(source), config=CONFIG)

    def test_manual_annotation_rescues_unbounded_loop(self):
        source = """
        main:
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """
        program = assemble(source)
        header = program.symbols["loop"]
        result = analyze_wcet(program, config=CONFIG,
                              manual_loop_bounds={header: 20})
        execution = run_program(program, config=CONFIG, arguments={0: 15})
        assert result.wcet_cycles >= execution.cycles


class TestCalls:
    def test_call_heavy_program(self):
        result, execution = wcet_and_run("""
        main:
            MOVI R0, #3
            BL work
            BL work
            HALT
        work:
            PUSH {R4, LR}
            MOVI R4, #0
        wloop:
            ADDI R4, R4, #1
            CMPI R4, #5
            BLT wloop
            POP {R4, LR}
            RET
        """)
        assert result.wcet_cycles >= execution.cycles
        assert result.wcet_cycles <= execution.cycles * 1.3

    def test_arrays_and_cache(self):
        result, execution = wcet_and_run("""
        main:
            MOVI R0, #0
            LDA R1, arr
            MOVI R5, #0
        loop:
            SHLI R3, R0, #2
            LDR R2, [R1, R3]
            ADD R5, R5, R2
            ADDI R0, R0, #1
            CMPI R0, #8
            BLT loop
            HALT
        .data
        arr: .word 1, 2, 3, 4, 5, 6, 7, 8
        """)
        assert result.wcet_cycles >= execution.cycles
        assert result.wcet_cycles <= int(execution.cycles * 1.6)


class TestWorstCasePath:
    def test_path_counts_reflect_loop(self):
        source = """
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #7
            BLT loop
            HALT
        """
        program = assemble(source)
        result = analyze_wcet(program, config=CONFIG)
        loop_addr = program.symbols["loop"]
        loop_counts = [count for node, count
                       in result.path.path.node_counts.items()
                       if node.block == loop_addr]
        assert loop_counts == [7]

    def test_summary_renders(self):
        source = "main: HALT\n"
        result = analyze_wcet(assemble(source), config=CONFIG)
        text = result.summary()
        assert "WCET bound" in text
        assert "I-cache" in text


class TestAblations:
    LOOP_ARRAY = """
    main:
        MOVI R0, #0
        LDA R1, arr
    loop:
        SHLI R3, R0, #2
        LDR R2, [R1, R3]
        ADDI R0, R0, #1
        CMPI R0, #16
        BLT loop
        HALT
    .data
    arr: .word 0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15
    """

    def test_value_analysis_improves_dcache(self):
        program = assemble(self.LOOP_ARRAY)
        smart = analyze_wcet(program, config=CONFIG,
                             use_value_analysis_for_dcache=True)
        blind = analyze_wcet(program, config=CONFIG,
                             use_value_analysis_for_dcache=False)
        execution = run_program(program, config=CONFIG)
        assert smart.wcet_cycles >= execution.cycles
        assert blind.wcet_cycles >= execution.cycles
        assert smart.wcet_cycles <= blind.wcet_cycles

    def test_phase_timings_recorded(self):
        program = assemble(self.LOOP_ARRAY)
        result = analyze_wcet(program, config=CONFIG)
        for phase in ("cfg", "value", "loopbounds", "icache", "dcache",
                      "pipeline", "path"):
            assert phase in result.phase_seconds
