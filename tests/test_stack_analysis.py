"""Tests for StackAnalyzer and the OSEK system-level analysis
(soundness obligation S2)."""

import pytest

from repro.isa import assemble
from repro.isa.program import MemoryMap
from repro.sim import run_program
from repro.stack import (StackAnalysisError, TaskSpec, analyze_stack,
                         analyze_system_stack)


def bound_and_actual(source, arguments=None):
    program = assemble(source)
    result = analyze_stack(program)
    execution = run_program(program, arguments=arguments)
    return result, execution


class TestStackAnalyzer:
    def test_leaf_function(self):
        result, execution = bound_and_actual("""
        main:
            PUSH {R4-R7}
            POP {R4-R7}
            HALT
        """)
        assert result.bound == 16
        assert result.bound >= execution.max_stack_usage
        assert result.bound == execution.max_stack_usage

    def test_nested_calls_accumulate(self):
        result, execution = bound_and_actual("""
        main:
            PUSH {LR}
            BL middle
            POP {LR}
            HALT
        middle:
            PUSH {R4, LR}
            BL leaf
            POP {R4, LR}
            RET
        leaf:
            PUSH {R4-R11}
            POP {R4-R11}
            RET
        """)
        assert result.bound == 4 + 8 + 32
        assert result.bound == execution.max_stack_usage

    def test_branch_dependent_usage_takes_max(self):
        source = """
        main:
            CMPI R0, #0
            BEQ shallow
            PUSH {R4-R11}
            POP {R4-R11}
            HALT
        shallow:
            PUSH {R4}
            POP {R4}
            HALT
        """
        program = assemble(source)
        result = analyze_stack(program)
        deep = run_program(program, arguments={0: 1})
        shallow = run_program(program, arguments={0: 0})
        assert result.bound == 32
        assert result.bound >= deep.max_stack_usage
        assert result.bound >= shallow.max_stack_usage

    def test_explicit_sp_arithmetic(self):
        result, execution = bound_and_actual("""
        main:
            SUBI SP, SP, #64
            MOVI R0, #1
            STR R0, [SP, #0]
            ADDI SP, SP, #64
            HALT
        """)
        assert result.bound == 64
        assert result.bound == execution.max_stack_usage

    def test_loop_neutral_stack(self):
        result, execution = bound_and_actual("""
        main:
            MOVI R0, #0
        loop:
            PUSH {R4}
            POP {R4}
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
            HALT
        """)
        assert result.bound == 4
        assert result.bound == execution.max_stack_usage

    def test_per_function_breakdown(self):
        result, _ = bound_and_actual("""
        main:
            PUSH {LR}
            BL leaf
            POP {LR}
            HALT
        leaf:
            PUSH {R4, R5}
            POP {R4, R5}
            RET
        """)
        assert result.per_function["main"] >= 4
        assert result.per_function["leaf"] == 12

    def test_overflow_detection(self):
        # Tiny reserved stack region: 32 bytes.
        tight = MemoryMap(stack_base=0x20000, stack_limit=0x20000 - 32)
        source = """
        main:
            PUSH {R4-R11}
            PUSH {R4-R11}
            POP {R4-R11}
            POP {R4-R11}
            HALT
        """
        program = assemble(source, memory_map=tight)
        result = analyze_stack(program)
        assert result.bound == 64
        assert result.overflows

    def test_unbounded_sp_raises(self):
        # SP derived from an unknown input register.
        source = """
        main:
            SUB SP, SP, R0
            HALT
        """
        with pytest.raises(StackAnalysisError):
            analyze_stack(assemble(source))

    def test_summary_text(self):
        result, _ = bound_and_actual("main: HALT\n")
        assert "stack usage" in result.summary()


class TestOSEKSystemAnalysis:
    def test_single_task(self):
        result = analyze_system_stack([TaskSpec("t1", 100, priority=1)])
        assert result.bound == 100
        assert [t.name for t in result.chain] == ["t1"]

    def test_priority_chain(self):
        result = analyze_system_stack([
            TaskSpec("low", 200, priority=1),
            TaskSpec("mid", 150, priority=2),
            TaskSpec("high", 100, priority=3),
        ])
        # All three can nest.
        assert result.bound == 450
        assert result.naive_sum == 450

    def test_equal_priorities_do_not_nest(self):
        result = analyze_system_stack([
            TaskSpec("a", 200, priority=1),
            TaskSpec("b", 300, priority=1),
        ])
        assert result.bound == 300
        assert result.naive_sum == 500
        assert result.savings == 200

    def test_mixed_levels(self):
        result = analyze_system_stack([
            TaskSpec("a1", 100, priority=1),
            TaskSpec("a2", 400, priority=1),
            TaskSpec("b", 150, priority=2),
            TaskSpec("isr", 50, priority=10),
        ])
        # Worst chain: a2 (400) -> b (150) -> isr (50).
        assert result.bound == 600
        assert [t.name for t in result.chain] == ["a2", "b", "isr"]

    def test_preemption_threshold_blocks_nesting(self):
        result = analyze_system_stack([
            TaskSpec("worker", 300, priority=1, threshold=5),
            TaskSpec("mid", 200, priority=3),
            TaskSpec("urgent", 100, priority=9),
        ])
        # mid (prio 3 <= threshold 5) cannot preempt worker; urgent can.
        assert result.bound == max(300 + 100, 200 + 100)
        assert [t.name for t in result.chain] == ["worker", "urgent"]

    def test_kernel_overhead_counted(self):
        result = analyze_system_stack([
            TaskSpec("low", 100, priority=1),
            TaskSpec("high", 100, priority=2),
        ], kernel_overhead_per_preemption=32)
        assert result.bound == 232

    def test_naive_sum_uses_the_same_preemption_rule(self):
        # One shared threshold group: no task can preempt any other,
        # so the naive reference must not charge kernel overhead
        # either — a flat (n-1) would overstate the reported savings.
        result = analyze_system_stack([
            TaskSpec("a", 100, priority=1, threshold=3),
            TaskSpec("b", 200, priority=2, threshold=3),
            TaskSpec("c", 300, priority=3, threshold=3),
        ], kernel_overhead_per_preemption=64)
        assert result.bound == 300
        assert result.naive_sum == 600      # zero preemption overheads
        assert result.savings == 300
        # Fully preemptive distinct priorities: the classic (n-1)
        # overhead charge is unchanged.
        result = analyze_system_stack([
            TaskSpec("a", 100, priority=1),
            TaskSpec("b", 200, priority=2),
            TaskSpec("c", 300, priority=3),
        ], kernel_overhead_per_preemption=64)
        assert result.naive_sum == 600 + 2 * 64

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            analyze_system_stack([])
        with pytest.raises(ValueError):
            analyze_system_stack([TaskSpec("x", -1, priority=1)])
        with pytest.raises(ValueError):
            analyze_system_stack([TaskSpec("x", 1, priority=5,
                                           threshold=1)])
        with pytest.raises(ValueError):
            analyze_system_stack([TaskSpec("a", 1, priority=1),
                                  TaskSpec("a", 2, priority=2)])

    def test_bound_covers_random_schedules(self):
        """Simulate random preemption nestings; none may exceed the
        bound."""
        import random
        rng = random.Random(7)
        tasks = [
            TaskSpec("t1", 120, priority=1),
            TaskSpec("t2", 80, priority=2),
            TaskSpec("t3", 60, priority=2),
            TaskSpec("t4", 200, priority=4, threshold=6),
            TaskSpec("t5", 40, priority=7),
        ]
        result = analyze_system_stack(tasks)
        for _ in range(500):
            # Build a random legal preemption nesting.
            stack, usage, peak = [], 0, 0
            candidates = list(tasks)
            rng.shuffle(candidates)
            for task in candidates:
                if not stack or \
                        task.priority > stack[-1].effective_threshold:
                    stack.append(task)
                    usage += task.stack_bound
                    peak = max(peak, usage)
            assert peak <= result.bound
