"""Shared pytest configuration for the repository's test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden_bounds.json from the current "
             "analyses instead of asserting against it")
