"""Unit tests for KRISC instruction encoding and decoding."""

import pytest

from repro.isa import (Cond, DecodingError, EncodingError, Instruction,
                       Opcode, decode, encode)
from repro.isa.encoding import decode_from_bytes, encode_to_bytes
from repro.isa.instructions import OPCODE_FORMATS, Format


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr), address=instr.address)


class TestAluEncoding:
    def test_alu_rrr_roundtrip(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3, address=0x1000)
        assert roundtrip(instr) == instr

    def test_alu_rri_roundtrip(self):
        instr = Instruction(Opcode.ADDI, rd=4, rs1=5, imm=-42,
                            address=0x1000)
        assert roundtrip(instr) == instr

    def test_all_alu_rrr_opcodes(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                   Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
                   Opcode.ASR):
            instr = Instruction(op, rd=15, rs1=0, rs2=7)
            assert roundtrip(instr) == instr

    def test_all_alu_rri_opcodes(self):
        for op in (Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.ANDI,
                   Opcode.ORI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI,
                   Opcode.ASRI):
            instr = Instruction(op, rd=3, rs1=14, imm=0x7FFF)
            assert roundtrip(instr) == instr

    def test_imm16_boundaries(self):
        for imm in (-32768, -1, 0, 1, 32767):
            instr = Instruction(Opcode.ADDI, rd=0, rs1=0, imm=imm)
            assert roundtrip(instr).imm == imm

    def test_imm16_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADDI, rd=0, rs1=0, imm=32768))
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADDI, rd=0, rs1=0, imm=-32769))

    def test_bad_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, rd=16, rs1=0, rs2=0))
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, rd=None, rs1=0, rs2=0))


class TestMoveCompareEncoding:
    def test_mov_rr(self):
        instr = Instruction(Opcode.MOV, rd=9, rs1=10)
        assert roundtrip(instr) == instr

    def test_movi_sign_extension(self):
        instr = Instruction(Opcode.MOVI, rd=1, imm=-1)
        assert roundtrip(instr).imm == -1

    def test_movhi_unsigned(self):
        instr = Instruction(Opcode.MOVHI, rd=1, imm=0xFFFF)
        assert roundtrip(instr).imm == 0xFFFF

    def test_movhi_rejects_negative(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.MOVHI, rd=1, imm=-1))

    def test_cmp_rr(self):
        instr = Instruction(Opcode.CMP, rs1=3, rs2=12)
        assert roundtrip(instr) == instr

    def test_cmpi(self):
        instr = Instruction(Opcode.CMPI, rs1=3, imm=-100)
        assert roundtrip(instr) == instr


class TestMemoryEncoding:
    def test_ldr(self):
        instr = Instruction(Opcode.LDR, rd=2, rs1=13, imm=8)
        assert roundtrip(instr) == instr

    def test_str(self):
        instr = Instruction(Opcode.STR, rs2=2, rs1=13, imm=-4)
        assert roundtrip(instr) == instr

    def test_ldrx(self):
        instr = Instruction(Opcode.LDRX, rd=2, rs1=5, rs2=6)
        assert roundtrip(instr) == instr

    def test_strx(self):
        instr = Instruction(Opcode.STRX, rd=2, rs1=5, rs2=6)
        assert roundtrip(instr) == instr


class TestBranchEncoding:
    def test_unconditional_branch(self):
        instr = Instruction(Opcode.B, imm=-3, address=0x1010)
        back = roundtrip(instr)
        assert back == instr
        assert back.branch_target() == 0x1010 + 4 - 12

    def test_conditional_branch_all_conditions(self):
        for cond in Cond:
            instr = Instruction(Opcode.BCC, cond=cond, imm=5,
                                address=0x1000)
            back = roundtrip(instr)
            assert back.cond is cond
            assert back.branch_target() == 0x1000 + 4 + 20

    def test_call(self):
        instr = Instruction(Opcode.BL, imm=100, address=0x1000)
        assert roundtrip(instr) == instr

    def test_indirect(self):
        assert roundtrip(Instruction(Opcode.BR, rs1=7)).rs1 == 7
        assert roundtrip(Instruction(Opcode.BLR, rs1=7)).rs1 == 7

    def test_ret_and_misc(self):
        for op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
            assert roundtrip(Instruction(op)).opcode is op

    def test_branch_offset_bounds(self):
        assert roundtrip(Instruction(Opcode.B, imm=(1 << 25) - 1)).imm \
            == (1 << 25) - 1
        assert roundtrip(Instruction(Opcode.B, imm=-(1 << 25))).imm \
            == -(1 << 25)
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.B, imm=1 << 25))


class TestReglistEncoding:
    def test_push_pop(self):
        regs = (4, 5, 6, 14)
        for op in (Opcode.PUSH, Opcode.POP):
            instr = Instruction(op, reglist=regs)
            assert roundtrip(instr).reglist == regs

    def test_empty_reglist_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.PUSH, reglist=()))

    def test_full_reglist(self):
        regs = tuple(range(16))
        instr = Instruction(Opcode.PUSH, reglist=regs)
        assert roundtrip(instr).reglist == regs


class TestDecodingErrors:
    def test_invalid_opcode(self):
        with pytest.raises(DecodingError):
            decode(0x3E << 26)

    def test_invalid_condition(self):
        word = (int(Opcode.BCC) << 26) | (0xF << 22)
        with pytest.raises(DecodingError):
            decode(word)

    def test_truncated_bytes(self):
        with pytest.raises(DecodingError):
            decode_from_bytes(b"\x00\x01")

    def test_error_carries_address(self):
        try:
            decode(0x3E << 26, address=0x1234)
        except DecodingError as exc:
            assert exc.address == 0x1234
        else:  # pragma: no cover
            pytest.fail("expected DecodingError")


class TestInstructionProperties:
    def test_written_registers_alu(self):
        assert Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2) \
            .written_registers() == (3,)

    def test_written_registers_pop_includes_sp(self):
        written = Instruction(Opcode.POP, reglist=(4, 5)) \
            .written_registers()
        assert set(written) == {4, 5, 13}

    def test_read_registers_store(self):
        assert set(Instruction(Opcode.STR, rs2=2, rs1=13, imm=0)
                   .read_registers()) == {2, 13}

    def test_call_writes_lr(self):
        assert Instruction(Opcode.BL, imm=0).written_registers() == (14,)

    def test_control_flow_flags(self):
        assert Instruction(Opcode.B, imm=0).is_control_flow
        assert Instruction(Opcode.RET).is_return
        assert Instruction(Opcode.BL, imm=0).is_call
        assert not Instruction(Opcode.ADD, rd=0, rs1=0, rs2=0) \
            .is_control_flow

    def test_memory_flags(self):
        assert Instruction(Opcode.LDR, rd=0, rs1=0, imm=0).is_load
        assert Instruction(Opcode.STRX, rd=0, rs1=0, rs2=0).is_store
        assert Instruction(Opcode.PUSH, reglist=(4,)).accesses_memory

    def test_every_opcode_has_format(self):
        for op in Opcode:
            assert isinstance(OPCODE_FORMATS[op], Format)

    def test_str_rendering(self):
        text = str(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=3))
        assert text == "ADDI R1, R2, #3"
        text = str(Instruction(Opcode.LDR, rd=0, rs1=13, imm=4))
        assert text == "LDR R0, [SP, #4]"
