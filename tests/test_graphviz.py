"""DOT export of the annotated task graph (`repro.report.graphviz`).

The text renderer is well covered; these tests give the DOT renderer
the same treatment: structural invariants (unique node ids, every edge
endpoint defined), label content (bound, timing model, context
policy), and snapshot determinism.
"""

import re

import pytest

from repro.cfg.contexts import make_policy
from repro.report import wcet_dot
from repro.workloads.suite import analyze_workload, get_workload

NODE_PATTERN = re.compile(r"^  (\w+) \[label=", re.MULTILINE)
EDGE_PATTERN = re.compile(r"^  (\w+) -> (\w+) \[", re.MULTILINE)


@pytest.fixture(scope="module")
def result():
    return analyze_workload(get_workload("bs"),
                            context_policy=make_policy("vivu", peel=1),
                            pipeline_model="krisc5")


@pytest.fixture(scope="module")
def dot(result):
    return wcet_dot(result)


def test_dot_is_a_digraph(dot):
    assert dot.startswith("digraph wcet {")
    assert dot.rstrip().endswith("}")


def test_node_ids_are_unique_and_cover_the_graph(result, dot):
    ids = NODE_PATTERN.findall(dot)
    assert len(ids) == result.graph.node_count()
    assert len(set(ids)) == len(ids)


def test_every_edge_references_a_defined_node(dot):
    ids = set(NODE_PATTERN.findall(dot))
    edges = EDGE_PATTERN.findall(dot)
    assert edges
    for source, target in edges:
        assert source in ids
        assert target in ids


def test_graph_label_names_bound_model_and_policy(result, dot):
    label_line = next(line for line in dot.splitlines()
                      if "label=\"WCET" in line)
    assert f"WCET {result.wcet_cycles} cyc" in label_line
    assert "krisc5 timing model" in label_line
    assert result.graph.policy.describe() in label_line


def test_peeled_contexts_get_distinct_nodes(result, dot):
    # VIVU peeling marks first-iteration copies; their context labels
    # must appear in the rendered nodes.
    assert ".it0]" in dot
    peeled = [node for node in result.graph.nodes()
              if node.context.iters]
    assert peeled
    ids = NODE_PATTERN.findall(dot)
    assert len(ids) == result.graph.node_count()


def test_worst_case_path_nodes_are_highlighted(result, dot):
    counts = result.path.path.node_counts
    assert any(count > 0 for count in counts.values())
    assert "color=red" in dot
    assert "penwidth=2.0" in dot


def test_include_instructions_expands_labels(result):
    bare = wcet_dot(result)
    full = wcet_dot(result, include_instructions=True)
    assert len(full) > len(bare)


def test_dot_output_is_deterministic(result):
    assert wcet_dot(result) == wcet_dot(result)


def test_dot_shows_edge_extra_cycles(dot):
    # Taken-branch edges carry extra cycles under both timing models.
    assert re.search(r"\(\+\d+ cyc\)", dot)
