"""The sweep engine: matrix expansion, artifact cache, and execution.

Covers the tentpole guarantees of the batch layer:

* matrix strings expand to a deterministic, validated job list,
* the content-addressed cache round-trips artifacts, treats corrupt
  objects as misses, and invalidates on salt (code-version) change,
* cached, uncached, warm, and parallel analyses all produce
  bit-identical results, with phase-level sharing across pipeline
  models exactly as designed.
"""

import json
import os
import pickle
import threading
import time

import pytest

from repro.batch import (ArtifactCache, JobSpec, code_version_salt,
                         expand_matrix, golden_from_rows, merge_golden,
                         parse_policy, run_sweep)
from repro.cache.config import MachineConfig
from repro.cfg.contexts import (FullCallString, KLimitedCallString, VIVU)
from repro.report import wcet_report
from repro.wcet.ait import PHASES, analyze_wcet
from repro.workloads.suite import (analyze_workload, get_workload,
                                   sweep_suite, workload_names)


# -- Matrix expansion -----------------------------------------------------------


def test_full_matrix_covers_19_x_3_x_2():
    jobs = expand_matrix("all:all:all")
    assert len(jobs) == len(workload_names()) * 3 * 2
    assert len(set(jobs)) == len(jobs)
    # Models iterate innermost so sequential sweeps share per-policy
    # artifacts between the two models.
    assert jobs[0].workload == jobs[1].workload
    assert jobs[0].policy == jobs[1].policy
    assert jobs[0].model != jobs[1].model


def test_matrix_components_default_to_all():
    assert expand_matrix("fibcall") == expand_matrix("fibcall:all:all")
    assert len(expand_matrix("fibcall:vivu")) == 2
    assert expand_matrix("fibcall,bs:full:krisc5") == [
        JobSpec("fibcall", "full", "krisc5"),
        JobSpec("bs", "full", "krisc5")]


@pytest.mark.parametrize("bad", [
    "nosuchworkload", "fibcall:nosuchpolicy", "fibcall:full:nosuchmodel",
    "a:b:c:d", "fibcall:full@1", "fibcall:klimited@1@2",
    "fibcall:vivu@x"])
def test_bad_matrix_components_are_rejected(bad):
    with pytest.raises(ValueError):
        expand_matrix(bad)


def test_repeated_matrix_tokens_dedupe_preserving_order():
    assert expand_matrix("fibcall,fibcall:full:additive") == [
        JobSpec("fibcall", "full", "additive")]
    assert expand_matrix("bs,fibcall,bs:full:additive") == [
        JobSpec("bs", "full", "additive"),
        JobSpec("fibcall", "full", "additive")]
    assert expand_matrix("fibcall:full,vivu,full:krisc5") == [
        JobSpec("fibcall", "full", "krisc5"),
        JobSpec("fibcall", "vivu", "krisc5")]
    assert expand_matrix(
        "fibcall:full:additive,additive,krisc5") == [
        JobSpec("fibcall", "full", "additive"),
        JobSpec("fibcall", "full", "krisc5")]


@pytest.mark.parametrize("bad,component", [
    ("all,fibcall:full:additive", "workloads"),
    ("fibcall:all,full:additive", "policies"),
    ("fibcall:full:all,additive", "models"),
])
def test_all_inside_comma_list_is_rejected_clearly(bad, component):
    with pytest.raises(ValueError, match=f"'all' cannot be combined "
                                         f"with explicit {component}"):
        expand_matrix(bad)


def test_policy_tokens():
    assert isinstance(parse_policy("full"), FullCallString)
    assert parse_policy("klimited").k == 2
    assert parse_policy("klimited@3").k == 3
    vivu = parse_policy("vivu@2@1")
    assert isinstance(vivu, VIVU)
    assert vivu.peel == 2 and vivu.k == 1
    assert parse_policy("vivu").peel == 1


# -- Artifact cache -------------------------------------------------------------


def test_cache_roundtrip_on_disk(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s")
    key = cache.key("material")
    assert cache.lookup(key) == (False, None)
    cache.store(key, {"artifact": [1, 2, 3]})
    # A fresh cache object (fresh process in real life) reads from disk.
    fresh = ArtifactCache(str(tmp_path), salt="s")
    hit, value = fresh.lookup(key)
    assert hit and value == {"artifact": [1, 2, 3]}
    assert fresh.hit_ratio() == 1.0


def test_salt_change_invalidates_everything(tmp_path):
    first = ArtifactCache(str(tmp_path), salt="v1")
    second = ArtifactCache(str(tmp_path), salt="v2")
    assert first.key("m") != second.key("m")


def test_corrupt_object_is_a_miss(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s")
    key = cache.key("m")
    cache.store(key, "value")
    path = cache._object_path(key)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    fresh = ArtifactCache(str(tmp_path), salt="s")
    assert fresh.lookup(key) == (False, None)


def test_cache_limit_evicts_oldest_objects_first(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s", limit_bytes=4096)
    payload = b"x" * 1500
    keys = [cache.key(f"artifact-{i}") for i in range(4)]
    for age, key in enumerate(keys):
        cache.store(key, payload)
        # Make the write order unambiguous to the mtime-based policy
        # even on coarse filesystem clocks.
        stamp = 1_000_000 + age
        os.utime(cache._object_path(key), (stamp, stamp))
    cache.store(cache.key("one-more"), payload)
    assert cache.evictions >= 2
    on_disk = [key for key in keys
               if os.path.exists(cache._object_path(key))]
    # The survivors are a suffix of the write order: oldest went first.
    assert on_disk == keys[len(keys) - len(on_disk):]
    assert on_disk != keys
    # Evicted artifacts stay memoised in this process but a fresh
    # process sees a miss and recomputes.
    assert cache.lookup(keys[0]) == (True, payload)
    fresh = ArtifactCache(str(tmp_path), salt="s", limit_bytes=4096)
    assert fresh.lookup(keys[0]) == (False, None)


def test_cache_without_limit_never_evicts(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s")
    for i in range(6):
        cache.store(cache.key(f"artifact-{i}"), b"y" * 2000)
    assert cache.evictions == 0
    assert all(os.path.exists(cache._object_path(cache.key(f"artifact-{i}")))
               for i in range(6))


def test_sweep_cache_limit_mb_bounds_the_store(tmp_path):
    limit_mb = 0.003
    result = sweep_suite("fibcall:full:krisc5", cache_dir=str(tmp_path),
                         cache_limit_mb=limit_mb)
    assert not result.errors
    total = sum(os.path.getsize(os.path.join(dirpath, name))
                for dirpath, _, names in os.walk(tmp_path / "objects")
                for name in names if name.endswith(".pkl"))
    assert total <= limit_mb * 1024 * 1024
    # The bound itself is unaffected by eviction.
    unlimited = sweep_suite("fibcall:full:krisc5", use_cache=False)
    assert result.bounds() == unlimited.bounds()


def test_eviction_breaks_mtime_ties_by_path_not_size(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s", limit_bytes=10 ** 9)
    keys = [cache.key(f"tie-{i}") for i in range(4)]
    by_path = sorted(keys, key=cache._object_path)
    # Give the path-smallest entries the LARGEST payloads: a sort that
    # (wrongly) fell back to file size to break mtime ties would evict
    # the path-largest entries first instead.
    for rank, key in enumerate(by_path):
        cache.store(key, b"z" * (1600 - 200 * rank))
    stamp = 1_000_000
    for key in keys:
        os.utime(cache._object_path(key), (stamp, stamp))
    cache.limit_bytes = 4096
    trigger = cache.key("trigger")
    cache.store(trigger, b"z" * 1000)
    assert cache.evictions > 0
    survivors = {key for key in keys
                 if os.path.exists(cache._object_path(key))}
    # Deterministic tie-break by path: the evicted set is exactly a
    # prefix of the path order, independent of object sizes.
    gone = [key for key in by_path if key not in survivors]
    assert gone
    assert gone == by_path[:len(gone)]
    # The just-stored object is never the eviction victim.
    assert os.path.exists(cache._object_path(trigger))


def test_disk_tally_makes_under_limit_stores_rescan_free(tmp_path,
                                                         monkeypatch):
    cache = ArtifactCache(str(tmp_path), salt="s", limit_bytes=10 ** 6)
    cache.store(cache.key("a"), b"x" * 100)
    total, _ = cache._scan_objects()
    assert cache._disk_bytes == total
    # Once the tally is known and under the limit, further stores must
    # not walk objects/ at all.
    def boom():
        raise AssertionError("store under the limit rescanned objects/")
    monkeypatch.setattr(cache, "_scan_objects", boom)
    cache.store(cache.key("b"), b"x" * 100)
    assert cache.evictions == 0
    monkeypatch.undo()
    total, _ = cache._scan_objects()
    assert cache._disk_bytes == total


def test_disk_tally_resets_and_resyncs_on_drift(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s", limit_bytes=10 ** 6)
    cache.store(cache.key("a"), b"x" * 100)
    assert cache._disk_bytes is not None
    # A concurrent worker shrinking the tree under us can drive the
    # delta-tracked tally negative: that resets it to unknown ...
    cache._disk_bytes_add(-(cache._disk_bytes + 1))
    assert cache._disk_bytes is None
    # ... and the next store's eviction check rescans and resyncs.
    cache.store(cache.key("b"), b"x" * 100)
    total, _ = cache._scan_objects()
    assert cache._disk_bytes == total


def test_disk_tally_tracks_overwrites(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s", limit_bytes=10 ** 6)
    key = cache.key("a")
    cache.store(key, b"x" * 5000)
    cache.store(key, b"x" * 100)        # replaced, not accumulated
    total, _ = cache._scan_objects()
    assert cache._disk_bytes == total


# -- Single-flight (in-flight dedup) ----------------------------------------


def test_fetch_or_compute_single_flight(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s")
    key = cache.key("slow-artifact")
    entered = threading.Event()
    release = threading.Event()
    calls = []

    def compute():
        calls.append("compute")
        entered.set()
        assert release.wait(10)
        return "artifact"

    outcomes = {}

    def leader():
        outcomes["leader"] = cache.fetch_or_compute(key, compute)

    def follower():
        outcomes["follower"] = cache.fetch_or_compute(
            key, lambda: pytest.fail("follower recomputed"))

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    assert entered.wait(10)
    follower_thread = threading.Thread(target=follower)
    follower_thread.start()
    # Let the follower park on the leader's latch, then release the
    # computation.
    time.sleep(0.05)
    release.set()
    leader_thread.join(10)
    follower_thread.join(10)
    assert calls == ["compute"]
    assert outcomes["leader"] == ("artifact", True)
    assert outcomes["follower"] == ("artifact", False)
    assert cache.misses == 1
    assert cache.hits == 1
    assert key not in cache._inflight


def test_fetch_or_compute_leader_failure_releases_followers(tmp_path):
    cache = ArtifactCache(str(tmp_path), salt="s")
    key = cache.key("fragile")
    entered = threading.Event()
    release = threading.Event()

    def failing():
        entered.set()
        assert release.wait(10)
        raise RuntimeError("leader died")

    errors = []

    def leader():
        try:
            cache.fetch_or_compute(key, failing)
        except RuntimeError as exc:
            errors.append(str(exc))

    outcomes = {}

    def follower():
        outcomes["follower"] = cache.fetch_or_compute(key, lambda: 42)

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    assert entered.wait(10)
    follower_thread = threading.Thread(target=follower)
    follower_thread.start()
    time.sleep(0.05)
    release.set()
    leader_thread.join(10)
    follower_thread.join(10)
    assert errors == ["leader died"]
    # The follower took over leadership and computed for itself.
    assert outcomes["follower"] == (42, True)
    assert key not in cache._inflight


def test_code_version_salt_is_stable_and_hex():
    salt = code_version_salt()
    assert salt == code_version_salt()
    assert len(salt) == 64
    int(salt, 16)


def test_process_cache_normalizes_default_salt(tmp_path):
    # A worker asked for the default salt (None) and one asked for the
    # explicit code-version salt must share the same memoised cache:
    # they address identical keys.
    from repro.batch.engine import _process_cache
    implicit = _process_cache(str(tmp_path), None, True)
    explicit = _process_cache(str(tmp_path), code_version_salt(), True)
    assert implicit is explicit


def test_run_job_reports_compile_time_separately(tmp_path):
    from repro.batch.engine import run_job
    cache = ArtifactCache(str(tmp_path))
    spec = JobSpec("fibcall", "full", "additive")
    row = run_job(spec, cache=cache)
    assert "compile_seconds" in row
    assert row["compile_seconds"] >= 0.0
    assert row["wall_seconds"] >= 0.0
    # A memoised program compiles for free on the warm run.
    warm = run_job(spec, cache=cache)
    assert warm["compile_seconds"] == 0.0
    assert warm["wcet_cycles"] == row["wcet_cycles"]


def test_program_content_digest():
    program = get_workload("fibcall").compile()
    again = get_workload("fibcall").compile()
    other = get_workload("bs").compile()
    assert program.content_digest() == again.content_digest()
    assert program.content_digest() != other.content_digest()


# -- Cached analysis bit-identity ----------------------------------------------


def test_cached_analysis_is_bit_identical_to_uncached(tmp_path):
    workload = get_workload("bs")
    plain = analyze_workload(workload)
    cache = ArtifactCache(str(tmp_path))
    cold = analyze_workload(workload, phase_cache=cache)
    warm = analyze_workload(workload, phase_cache=cache)

    assert plain.cache_events == {}
    assert set(cold.cache_events) == set(PHASES)
    assert all(event == "hit" for event in warm.cache_events.values())
    for result in (cold, warm):
        assert result.wcet_cycles == plain.wcet_cycles
        assert result.loop_bounds == plain.loop_bounds
        strip = lambda r: "\n".join(
            line for line in wcet_report(r).splitlines()
            if " ms" not in line)
        assert strip(result) == strip(plain)


def test_phase_sharing_across_pipeline_models(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    program = get_workload("fibcall").compile()
    analyze_wcet(program, phase_cache=cache)
    second = analyze_wcet(program, pipeline_model="krisc5",
                          phase_cache=cache)
    # Everything up to the timing model is model-independent.
    for phase in ("cfg", "value", "loopbounds", "icache", "dcache"):
        assert second.cache_events[phase] == "hit", phase
    for phase in ("pipeline", "path"):
        assert second.cache_events[phase] == "miss", phase


def test_machine_config_change_invalidates_cache_phases(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    program = get_workload("fibcall").compile()
    analyze_wcet(program, phase_cache=cache)
    changed = analyze_wcet(
        program, config=MachineConfig(branch_penalty=5),
        phase_cache=cache)
    assert changed.cache_events["icache"] == "hit"
    assert changed.cache_events["pipeline"] == "miss"


# -- Sweep execution ------------------------------------------------------------

SMALL_MATRIX = "fibcall,bs:full,vivu:additive,krisc5"


def test_sequential_sweep_cold_then_warm(tmp_path):
    jobs = expand_matrix(SMALL_MATRIX)
    cache_dir = str(tmp_path / "cache")
    cold = run_sweep(jobs, parallel=1, cache_dir=cache_dir)
    warm = run_sweep(jobs, parallel=1, cache_dir=cache_dir)

    assert cold.errors == [] and warm.errors == []
    # Rows come back in job order regardless of anything.
    assert [(row["workload"], row["policy"], row["model"])
            for row in cold.rows] == \
        [(spec.workload, spec.policy, spec.model) for spec in jobs]
    assert warm.bounds() == cold.bounds()
    assert warm.hit_ratio() == 1.0
    assert warm.cache_misses == 0


def test_sweep_writes_jsonl_in_job_order(tmp_path):
    jobs = expand_matrix("fibcall:full")
    path = str(tmp_path / "results.jsonl")
    result = run_sweep(jobs, parallel=1, jsonl_path=path)
    lines = [json.loads(line)
             for line in open(path).read().splitlines()]
    assert len(lines) == len(jobs) == 2
    assert [row["model"] for row in lines] == ["additive", "krisc5"]
    assert lines[0]["wcet_cycles"] == result.rows[0]["wcet_cycles"]
    for row in lines:
        assert set(row["cache"]["events"]) == set(PHASES)
        assert row["phase_seconds"].keys() == row["cache"]["events"].keys()


def test_no_cache_sweep_records_no_events():
    result = run_sweep(expand_matrix("fibcall:full:additive"),
                       use_cache=False)
    assert result.errors == []
    assert result.rows[0]["cache"] == {"events": {}, "hits": 0,
                                       "misses": 0}
    assert result.hit_ratio() == 0.0


def test_parallel_sweep_matches_sequential(tmp_path):
    jobs = expand_matrix(SMALL_MATRIX)
    sequential = run_sweep(jobs, parallel=1,
                           cache_dir=str(tmp_path / "seq"))
    parallel = run_sweep(jobs, parallel=2,
                         cache_dir=str(tmp_path / "par"))
    assert parallel.errors == []
    assert parallel.bounds() == sequential.bounds()
    assert [(row["workload"], row["policy"], row["model"])
            for row in parallel.rows] == \
        [(spec.workload, spec.policy, spec.model) for spec in jobs]


def test_golden_from_rows_rejects_error_rows():
    rows = [{"workload": "fibcall", "policy": "full",
             "model": "additive", "error": "ValueError: boom"}]
    with pytest.raises(ValueError, match="failed job"):
        golden_from_rows(rows)


def test_merge_golden_refreshes_only_swept_points():
    base = {"fibcall": {"full": {"additive": 418, "krisc5": 392}},
            "bs": {"full": {"additive": 203}}}
    update = {"fibcall": {"full": {"krisc5": 390},
                          "vivu": {"additive": 418}}}
    merged = merge_golden(base, update)
    assert merged == {
        "fibcall": {"full": {"additive": 418, "krisc5": 390},
                    "vivu": {"additive": 418}},
        "bs": {"full": {"additive": 203}}}
    # Inputs are not mutated.
    assert base["fibcall"]["full"]["krisc5"] == 392


def test_sweep_suite_wrapper(tmp_path):
    result = sweep_suite("fibcall:full:additive",
                         cache_dir=str(tmp_path / "cache"))
    assert result.errors == []
    assert len(result.rows) == 1
    golden = golden_from_rows(result.rows)
    assert golden == {"fibcall": {"full": {
        "additive": result.rows[0]["wcet_cycles"]}}}


def test_concurrent_workers_share_one_cache_directory(tmp_path):
    """Two workers writing the same artifacts must not corrupt the
    store: a warm rerun still serves every phase from cache."""
    jobs = expand_matrix(SMALL_MATRIX)
    cache_dir = str(tmp_path / "cache")
    cold = run_sweep(jobs, parallel=2, cache_dir=cache_dir)
    warm = run_sweep(jobs, parallel=2, cache_dir=cache_dir)
    assert cold.errors == [] and warm.errors == []
    assert warm.bounds() == cold.bounds()
    assert warm.hit_ratio() == 1.0


def test_artifacts_survive_pickling_of_every_phase(tmp_path):
    """Every on-disk object must deserialise (guards against types
    whose pickling silently breaks, e.g. __slots__ immutability)."""
    cache_dir = str(tmp_path / "cache")
    run_sweep(expand_matrix("calltree:vivu"), cache_dir=cache_dir)
    objects = 0
    for dirpath, _, filenames in os.walk(cache_dir):
        for filename in filenames:
            with open(os.path.join(dirpath, filename), "rb") as handle:
                pickle.load(handle)
            objects += 1
    assert objects > 0
