"""Failure injection and edge cases across the pipeline.

A verification tool must fail loudly on inputs outside its supported
program class rather than emit an unsound bound; these tests pin that
behaviour down.
"""

import pytest

from repro.analysis import Interval
from repro.cfg import (CFGError, ExpansionError, IrreducibleLoopError,
                       build_cfg, expand_task, find_loops)
from repro.cache import CacheConfig
from repro.isa import (AssemblyError, Instruction, Opcode, assemble,
                       encode_to_bytes)
from repro.isa.program import MemoryMap, Program, Section
from repro.sim import SimulationError, Simulator, run_program
from repro.wcet import analyze_wcet


class TestMalformedBinaries:
    def test_control_flow_into_data_word(self):
        # Hand-build a text section whose second word is not code.
        words = [encode_to_bytes(Instruction(Opcode.NOP, address=0x1000)),
                 (0x3E << 26).to_bytes(4, "little")]   # invalid opcode
        program = Program(
            [Section(".text", 0x1000, b"".join(words))], {}, 0x1000)
        with pytest.raises(CFGError):
            build_cfg(program)

    def test_fallthrough_off_end_of_text(self):
        words = [encode_to_bytes(Instruction(Opcode.NOP, address=0x1000))]
        program = Program(
            [Section(".text", 0x1000, b"".join(words))], {}, 0x1000)
        with pytest.raises(CFGError):
            build_cfg(program)

    def test_branch_below_text(self):
        source = """
        main:
            B main
        """
        program = assemble(source)
        # Patch entry to point before the section.
        with pytest.raises(ValueError):
            program.instruction_at(0x0FFC)

    def test_simulator_rejects_non_code_pc(self):
        program = assemble("main: HALT\n.data\nv: .word 0\n")
        simulator = Simulator(program)
        simulator.pc = program.symbols["v"]
        with pytest.raises(SimulationError):
            simulator.step()


class TestUnsupportedProgramClasses:
    def test_recursion_rejected_at_expansion(self):
        program = assemble("""
        main:
            BL main
            HALT
        """)
        binary = build_cfg(program)
        with pytest.raises(ExpansionError) as excinfo:
            expand_task(binary)
        # The error names the offending call cycle.
        assert "main -> main" in str(excinfo.value)

    def test_irreducible_loop_rejected(self):
        # Jump into the middle of a loop (two-entry cycle).
        source = """
        main:
            CMPI R0, #0
            BEQ middle
        head:
            ADDI R1, R1, #1
        middle:
            ADDI R2, R2, #1
            CMPI R2, #10
            BLT head
            HALT
        """
        binary = build_cfg(assemble(source))
        graph = expand_task(binary)
        with pytest.raises(IrreducibleLoopError):
            find_loops(graph.entry, graph.adjacency())

    def test_context_explosion_guard(self):
        # 2^n contexts via chained double calls; cap must trip.
        functions = []
        for level in range(12):
            callee = f"f{level + 1}"
            functions.append(f"""
f{level}:
    PUSH {{LR}}
    BL {callee}
    BL {callee}
    POP {{LR}}
    RET""")
        source = "main:\n    BL f0\n    HALT\n" + "\n".join(functions) \
            + "\nf12:\n    RET\n"
        binary = build_cfg(assemble(source))
        with pytest.raises(ExpansionError):
            expand_task(binary, max_contexts=500)


class TestConfigurationValidation:
    def test_cache_config_rejects_non_powers_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(num_sets=3)
        with pytest.raises(ValueError):
            CacheConfig(associativity=0)
        with pytest.raises(ValueError):
            CacheConfig(line_size=24)
        with pytest.raises(ValueError):
            CacheConfig(miss_penalty=-1)

    def test_assembler_rejects_far_branch(self):
        # A conditional branch reaches +/- 2^21 words; fake a too-far
        # target via .equ.
        source = """
        .equ FAR, 0x4000000
        main:
            BEQ FAR
        """
        with pytest.raises((AssemblyError, Exception)):
            assemble(source)


class TestDegenerateTasks:
    def test_single_halt(self):
        program = assemble("main: HALT\n")
        result = analyze_wcet(program)
        execution = run_program(program)
        assert result.wcet_cycles == execution.cycles

    def test_empty_loop_body(self):
        program = assemble("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #3
            BLT loop
            HALT
        """)
        result = analyze_wcet(program)
        assert result.wcet_cycles >= run_program(program).cycles

    def test_branch_to_next_instruction(self):
        program = assemble("""
        main:
            B next
        next:
            HALT
        """)
        result = analyze_wcet(program)
        execution = run_program(program)
        assert result.wcet_cycles == execution.cycles

    def test_loop_bound_one(self):
        # Loop whose condition fails immediately.
        program = assemble("""
        main:
            MOVI R0, #10
        loop:
            ADDI R0, R0, #1
            CMPI R0, #5
            BLT loop
            HALT
        """)
        result = analyze_wcet(program)
        execution = run_program(program)
        assert result.wcet_cycles >= execution.cycles
        # One pass through the loop body, no back edge.
        (bound,) = result.loop_bounds.values()
        assert bound.max_iterations == 1

    def test_multiple_exits(self):
        program = assemble("""
        main:
            CMPI R0, #0
            BEQ alt
            HALT
        alt:
            NOP
            HALT
        """)
        result = analyze_wcet(program, register_ranges={0: (0, 1)})
        for value in (0, 1):
            execution = run_program(program, arguments={0: value})
            assert result.wcet_cycles >= execution.cycles

    def test_dead_function_never_expanded(self):
        # An uncalled function is not part of the task graph.
        program = assemble("""
        main:
            HALT
        orphan:
            RET
        """)
        binary = build_cfg(program)
        assert len(binary.functions) == 1

    def test_unreachable_after_halt_not_decoded(self):
        # Bytes after HALT may be garbage; reconstruction must not
        # touch them.
        text = (encode_to_bytes(Instruction(Opcode.HALT,
                                            address=0x1000))
                + (0x3E << 26).to_bytes(4, "little"))
        program = Program([Section(".text", 0x1000, text)],
                          {"main": 0x1000}, 0x1000)
        binary = build_cfg(program)
        assert binary.total_instructions() == 1


class TestDomainEdgeCases:
    def test_bottom_propagates_through_arithmetic(self):
        bottom = Interval.bottom()
        value = Interval.range(0, 5)
        assert bottom.add(value).is_bottom()
        assert value.mul(bottom).is_bottom()
        assert bottom.join(value) == value
        assert value.meet(bottom).is_bottom()

    def test_full_range_operations(self):
        top = Interval.top()
        assert top.add(Interval.const(1)).is_top()
        assert top.bitand(Interval.const(0xFF)) == Interval.range(0, 0xFF)

    def test_shift_amount_out_of_range(self):
        value = Interval.range(0, 10)
        assert value.shl(Interval.range(30, 40)).is_top()
        assert value.shl(Interval.const(33)) == \
            value.shl(Interval.const(1))   # hardware masks to 5 bits


class TestSimulatorEdgeCases:
    def test_pop_at_stack_base_reads_zeroes(self):
        program = assemble("main:\n POP {R4}\n HALT\n")
        result = run_program(program)
        assert result.register(4) == 0

    def test_ret_without_call_traps(self):
        program = assemble("main: RET\n")
        with pytest.raises(SimulationError):
            run_program(program)

    def test_indirect_jump_to_register_target(self):
        program = assemble("""
        main:
            LDA R0, finish
            BR R0
        dead:
            NOP
        finish:
            HALT
        """)
        result = run_program(program)
        assert result.halted
        dead = program.symbols["dead"]
        assert dead not in result.instruction_counts

    def test_cmp_overflow_flag_semantics(self):
        # INT_MIN - 1 overflows: signed comparison must still be right.
        program = assemble("""
        main:
            LDI R0, #0x80000000
            CMPI R0, #1
            BLT less
            MOVI R1, #0
            HALT
        less:
            MOVI R1, #1
            HALT
        """)
        result = run_program(program)
        assert result.register(1) == 1
