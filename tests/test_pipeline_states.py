"""Direct unit tests for the krisc5 abstract pipeline-state domain.

Covers the algebra (:class:`repro.pipeline.PipeStateSet`): join
commutativity/associativity on hand-built states, ``leq`` consistency
with ``join``, deterministic cap merging — and the per-instruction
stage-occupancy transfer function (:func:`repro.pipeline.walk_block`):
EX occupancy of multiplies, fetch/EX overlap, load-use interlocks,
MEM-unit queueing, persistence one-time costs, and monotonicity in the
entry state (the property dominance pruning relies on).
"""

import itertools

import pytest

from repro.cache.abstract import Classification
from repro.cache.config import MachineConfig
from repro.cfg import build_cfg
from repro.isa import assemble
from repro.pipeline import PipeState, PipeStateSet, walk_block

CONFIG = MachineConfig.default()
AH = Classification.ALWAYS_HIT
AM = Classification.ALWAYS_MISS
PS = Classification.PERSISTENT
NC = Classification.NOT_CLASSIFIED

EMPTY = PipeState()


def sset(*states, cap=8):
    return PipeStateSet(states, cap)


class TestPipeStateAlgebra:
    STATES = [
        PipeState(),
        PipeState(mem_residue=3),
        PipeState(pending=((2, 1),)),
        PipeState(pending=((2, 2), (5, 1))),
        PipeState(mem_residue=1, pending=((5, 3),)),
        PipeState(mem_residue=7, pending=((2, 1), (3, 2))),
    ]

    def test_dominates_is_reflexive_and_componentwise(self):
        for state in self.STATES:
            assert state.dominates(state)
        big = PipeState(mem_residue=5, pending=((2, 2), (5, 1)))
        assert big.dominates(PipeState(pending=((2, 1),)))
        assert big.dominates(PipeState(mem_residue=5))
        assert not big.dominates(PipeState(mem_residue=6))
        assert not big.dominates(PipeState(pending=((7, 1),)))

    def test_merge_is_an_upper_bound(self):
        for a, b in itertools.combinations(self.STATES, 2):
            merged = a.merge(b)
            assert merged.dominates(a) and merged.dominates(b)

    def test_join_commutative(self):
        for a, b in itertools.combinations(self.STATES, 2):
            lhs = sset(a).join(sset(b))
            rhs = sset(b).join(sset(a))
            assert lhs == rhs

    def test_join_associative(self):
        for a, b, c in itertools.combinations(self.STATES, 3):
            lhs = sset(a).join(sset(b)).join(sset(c))
            rhs = sset(a).join(sset(b).join(sset(c)))
            assert lhs == rhs

    def test_join_consistent_with_leq(self):
        for a, b in itertools.product(self.STATES, repeat=2):
            joined = sset(a).join(sset(b))
            assert sset(a).leq(joined)
            assert sset(b).leq(joined)
        # a ⊑ b  ⟹  a ⊔ b ≡ b
        small, big = sset(PipeState(pending=((2, 1),))), \
            sset(PipeState(mem_residue=2, pending=((2, 2),)))
        assert small.leq(big)
        assert small.join(big) == big

    def test_dominated_states_are_pruned(self):
        merged = sset(PipeState(mem_residue=4),
                      PipeState(mem_residue=2),
                      PipeState())
        assert merged.states == (PipeState(mem_residue=4),)

    def test_incomparable_states_are_kept(self):
        kept = sset(PipeState(mem_residue=4),
                    PipeState(pending=((3, 1),)))
        assert len(kept) == 2

    def test_cap_merges_deterministically(self):
        states = [PipeState(mem_residue=r, pending=((reg, d),))
                  for r, reg, d in [(0, 2, 1), (9, 3, 2), (1, 2, 2),
                                    (5, 4, 1), (2, 5, 3), (8, 6, 1)]]
        capped = PipeStateSet(states, cap=3)
        assert len(capped) <= 3
        # Same input in any arrival order yields the same capped set.
        for permutation in itertools.permutations(states):
            assert PipeStateSet(permutation, cap=3) == capped

    def test_capped_set_covers_the_uncapped_one(self):
        states = [PipeState(mem_residue=r, pending=((2, d),))
                  for r, d in [(0, 3), (1, 2), (4, 1), (6, 2), (2, 4)]]
        uncapped = PipeStateSet(states, cap=99)
        for cap in (1, 2, 3):
            assert uncapped.leq(PipeStateSet(states, cap=cap))

    def test_initial_and_bottom(self):
        assert PipeStateSet.initial(4).states == (EMPTY,)
        assert PipeStateSet((), 4).is_bottom()
        assert not PipeStateSet.initial(4).is_bottom()


def entry_block(source):
    program = assemble(source)
    cfg = build_cfg(program)
    function = cfg.functions[cfg.entry]
    return function.blocks[function.entry]


def walk(source, state=EMPTY, fetch=None, data=(), config=CONFIG,
         is_exit=False):
    block = entry_block(source)
    outcomes = fetch if fetch is not None \
        else [AH] * len(block.instructions)
    return walk_block(block, state, outcomes, list(data), config, is_exit)


class TestStageOccupancyTransfer:
    def test_alu_block_runs_at_cpi_one(self):
        result = walk("main:\n MOVI R2, #1\n ADDI R2, R2, #1\n"
                      " ADDI R2, R2, #1\n ADDI R2, R2, #1\n B main\n")
        # 5 instructions at CPI 1 plus the unconditional redirect.
        assert result.elapsed == 5 + CONFIG.branch_penalty
        assert result.exit_state == EMPTY

    def test_multiply_occupies_ex(self):
        plain = walk("main:\n MOVI R2, #3\n ADD R3, R2, R2\n HALT\n")
        mul = walk("main:\n MOVI R2, #3\n MUL R3, R2, R2\n HALT\n")
        assert mul.elapsed == plain.elapsed + CONFIG.mul_extra

    def test_fetch_miss_hides_behind_multiply(self):
        # The instruction after the MUL misses in the I-cache: its
        # fetch overlaps the EX occupancy, so the cost is the max of
        # the two paths, not the sum.
        source = "main:\n MOVI R2, #3\n MUL R3, R2, R2\n" \
                 " ADD R4, R2, R2\n HALT\n"
        hit = walk(source)
        missed = walk(source, fetch=[AH, AH, NC, AH])
        additive_extra = CONFIG.icache.miss_penalty
        assert missed.elapsed < hit.elapsed + additive_extra
        assert missed.elapsed == hit.elapsed + additive_extra \
            - CONFIG.mul_extra

    def test_load_use_interlock_adjacent_consumer(self):
        stall = walk("main:\n LDR R2, [R1]\n ADD R3, R2, R2\n HALT\n",
                     data=[(0, AH)])
        free = walk("main:\n LDR R2, [R1]\n ADD R3, R4, R4\n HALT\n",
                    data=[(0, AH)])
        assert stall.elapsed == free.elapsed + CONFIG.load_use_stall

    def test_load_use_interlock_hidden_by_intervening_work(self):
        spaced = walk("main:\n LDR R2, [R1]\n MOVI R4, #1\n"
                      " ADD R3, R2, R2\n HALT\n", data=[(0, AH)])
        free = walk("main:\n LDR R2, [R1]\n MOVI R4, #1\n"
                    " ADD R3, R4, R4\n HALT\n", data=[(0, AH)])
        assert spaced.elapsed == free.elapsed

    def test_data_miss_shadowed_by_independent_work(self):
        # An AM load whose value nobody reads: later ALU instructions
        # execute under the miss, so the block costs less than the
        # additive sum (which charges the full penalty).
        busy = walk("main:\n LDR R2, [R1]\n" +
                    " ADDI R4, R4, #1\n" * 6 + " HALT\n",
                    data=[(0, AM)], is_exit=True)
        additive = 8 + CONFIG.dcache.miss_penalty
        assert busy.elapsed < additive

    def test_consecutive_misses_queue_on_the_mem_unit(self):
        both = walk("main:\n LDR R2, [R1]\n LDR R3, [R1, #64]\n HALT\n",
                    data=[(0, AM), (1, AM)], is_exit=True)
        one = walk("main:\n LDR R2, [R1]\n LDR R3, [R1, #64]\n HALT\n",
                   data=[(0, AM), (1, AH)], is_exit=True)
        assert both.elapsed == one.elapsed + CONFIG.dcache.miss_penalty

    def test_persistent_accesses_charge_onetime_not_elapsed(self):
        ps = walk("main:\n LDR R2, [R1]\n HALT\n", data=[(0, PS)])
        ah = walk("main:\n LDR R2, [R1]\n HALT\n", data=[(0, AH)])
        assert ps.elapsed == ah.elapsed
        assert ps.onetime == ah.onetime + CONFIG.dcache.miss_penalty
        fetch_ps = walk("main:\n MOVI R2, #1\n HALT\n", fetch=[PS, AH])
        assert fetch_ps.onetime == CONFIG.icache.miss_penalty

    def test_block_final_load_exports_pending_state(self):
        result = walk("main:\n MOVI R4, #0\n LDR R2, [R1]\n HALT\n",
                      data=[(1, AH)])
        assert result.exit_state.mem_residue == 0
        assert dict(result.exit_state.pending).get(2) \
            == CONFIG.load_use_stall

    def test_entry_pending_state_stalls_first_consumer(self):
        # A delay-1 window is hidden behind the consumer's own fetch
        # cycle; from delay 2 the interlock surfaces as real stalls.
        hidden = walk("main:\n ADD R3, R2, R2\n HALT\n",
                      state=PipeState(pending=((2, 1),)))
        stalled = walk("main:\n ADD R3, R2, R2\n HALT\n",
                       state=PipeState(pending=((2, 3),)))
        free = walk("main:\n ADD R3, R2, R2\n HALT\n")
        assert hidden.elapsed == free.elapsed
        assert stalled.elapsed == free.elapsed + 2

    def test_entry_pending_cleared_by_overwrite(self):
        pending = PipeState(pending=((2, 1),))
        overwritten = walk("main:\n MOVI R2, #5\n ADD R3, R2, R2\n"
                           " HALT\n", state=pending)
        free = walk("main:\n MOVI R2, #5\n ADD R3, R2, R2\n HALT\n")
        assert overwritten.elapsed == free.elapsed

    def test_exit_block_pays_the_mem_drain(self):
        interior = walk("main:\n STR R2, [R1]\n HALT\n", data=[(0, AM)])
        exit_blk = walk("main:\n STR R2, [R1]\n HALT\n", data=[(0, AM)],
                        is_exit=True)
        assert exit_blk.elapsed == interior.elapsed + 1

    def test_walker_is_monotone_in_the_entry_state(self):
        source = "main:\n LDR R2, [R1]\n ADD R3, R2, R2\n" \
                 " STR R3, [R1, #4]\n HALT\n"
        small = PipeState(pending=((2, 1),))
        large = PipeState(mem_residue=6, pending=((2, 3), (4, 1)))
        assert large.dominates(small)
        walked_small = walk(source, state=small, data=[(0, NC), (2, NC)])
        walked_large = walk(source, state=large, data=[(0, NC), (2, NC)])
        assert walked_large.elapsed >= walked_small.elapsed
        assert walked_large.exit_state.dominates(walked_small.exit_state)


class TestStateValidation:
    def test_negative_residue_rejected(self):
        with pytest.raises(ValueError):
            PipeState(mem_residue=-1)

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ValueError):
            PipeState(pending=((2, 0),))

    def test_pending_is_normalised(self):
        state = PipeState(pending=((5, 1), (2, 3)))
        assert state.pending == ((2, 3), (5, 1))

    def test_config_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            MachineConfig(pipeline_model="superscalar")
        with pytest.raises(ValueError):
            MachineConfig(pipeline_state_cap=0)
