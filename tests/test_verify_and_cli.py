"""Tests for the bound-verification API and the command-line tool."""

import pytest

from repro.isa import assemble
from repro.lang import compile_program
from repro.stack import analyze_stack
from repro.verify import verify_bounds
from repro.wcet import analyze_wcet
from repro.__main__ import main as cli_main


LOOP_TASK = """
main:
    MOVI R4, #0
loop:
    ADDI R4, R4, #1
    CMPI R4, #10
    BLT loop
    HALT
"""

INPUT_TASK = """
main:
loop:
    SUBI R0, R0, #1
    CMPI R0, #0
    BGT loop
    HALT
"""


class TestVerifyBounds:
    def test_clean_program_passes(self):
        program = assemble(LOOP_TASK)
        wcet = analyze_wcet(program)
        stack = analyze_stack(program)
        report = verify_bounds(program, wcet, stack)
        assert report.ok, [str(v) for v in report.violations]
        assert report.runs == 1
        assert report.worst_cycles <= wcet.wcet_cycles

    def test_multiple_input_sets(self):
        program = assemble(INPUT_TASK)
        wcet = analyze_wcet(program, register_ranges={0: (1, 50)})
        report = verify_bounds(
            program, wcet,
            input_sets=[{0: 1}, {0: 25}, {0: 50}])
        assert report.ok
        assert report.runs == 4

    def test_detects_fabricated_violation(self):
        # Sanity check of the checker itself: tamper with the bound.
        program = assemble(LOOP_TASK)
        wcet = analyze_wcet(program)
        wcet.path.wcet_cycles = 1   # deliberately wrong
        report = verify_bounds(program, wcet)
        assert not report.ok
        assert any(v.kind == "S1" for v in report.violations)

    def test_workload_corpus_spot_check(self):
        from repro.workloads import analyze_workload, get_workload
        workload = get_workload("matmult")
        program = workload.compile()
        wcet = analyze_workload(workload)
        stack = analyze_stack(program)
        report = verify_bounds(program, wcet, stack)
        assert report.ok, [str(v) for v in report.violations]

    def test_summary_text(self):
        program = assemble(LOOP_TASK)
        wcet = analyze_wcet(program)
        report = verify_bounds(program, wcet)
        assert "OK" in report.summary()


class TestCLI:
    @pytest.fixture()
    def asm_file(self, tmp_path):
        path = tmp_path / "task.s"
        path.write_text(LOOP_TASK)
        return str(path)

    @pytest.fixture()
    def c_file(self, tmp_path):
        path = tmp_path / "task.c"
        path.write_text("""
        int r;
        void main() {
            int i;
            r = 0;
            for (i = 0; i < 5; i = i + 1) { r = r + i; }
        }
        """)
        return str(path)

    def test_wcet_command(self, asm_file, capsys):
        assert cli_main(["wcet", asm_file]) == 0
        output = capsys.readouterr().out
        assert "WCET BOUND" in output
        assert "StackAnalyzer" in output

    def test_wcet_on_minic(self, c_file, capsys):
        assert cli_main(["wcet", c_file, "--path"]) == 0
        output = capsys.readouterr().out
        assert "WCET BOUND" in output
        assert "block" in output

    def test_wcet_dot_export(self, asm_file, tmp_path, capsys):
        dot_path = str(tmp_path / "graph.dot")
        assert cli_main(["wcet", asm_file, "--dot", dot_path]) == 0
        content = open(dot_path).read()
        assert content.startswith("digraph wcet")

    def test_wcet_with_annotations(self, tmp_path, capsys):
        path = tmp_path / "input.s"
        path.write_text(INPUT_TASK)
        assert cli_main(["wcet", str(path),
                         "--reg-range", "R0=1:20"]) == 0
        output = capsys.readouterr().out
        assert "WCET BOUND" in output

    def test_wcet_manual_loop_bound(self, tmp_path, capsys):
        path = tmp_path / "input.s"
        path.write_text(INPUT_TASK)
        program = assemble(INPUT_TASK)
        header = program.symbols["loop"]
        assert cli_main(["wcet", str(path),
                         "--loop-bound", f"0x{header:x}=20"]) == 0

    def test_stack_command(self, asm_file, capsys):
        assert cli_main(["stack", asm_file]) == 0
        assert "stack usage" in capsys.readouterr().out

    def test_run_command(self, asm_file, capsys):
        assert cli_main(["run", asm_file]) == 0
        output = capsys.readouterr().out
        assert "halted after" in output
        assert "R4 =0x0000000a" in output.replace("R4=", "R4 =")

    def test_run_with_register(self, tmp_path, capsys):
        path = tmp_path / "input.s"
        path.write_text(INPUT_TASK)
        assert cli_main(["run", str(path), "--reg", "R0=7"]) == 0
        assert "halted" in capsys.readouterr().out

    def test_disasm_command(self, asm_file, capsys):
        assert cli_main(["disasm", asm_file]) == 0
        output = capsys.readouterr().out
        assert "MOVI R4, #0" in output
        assert "loop:" in output
