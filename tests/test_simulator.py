"""Tests for the concrete KRISC simulator."""

import pytest

from repro.isa import STACK_BASE, assemble
from repro.isa.registers import SP
from repro.cache.config import CacheConfig, MachineConfig
from repro.sim import OutOfFuel, SimulationError, Simulator, run_program


def run(source, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestArithmetic:
    def test_basic_alu(self):
        result = run("""
        main:
            MOVI R0, #6
            MOVI R1, #7
            MUL R2, R0, R1
            HALT
        """)
        assert result.register(2) == 42

    def test_wrapping_add(self):
        result = run("""
        main:
            LDI R0, #0x7FFFFFFF
            ADDI R0, R0, #1
            HALT
        """)
        assert result.register(0) == 0x80000000
        assert result.signed_register(0) == -(1 << 31)

    def test_shifts(self):
        result = run("""
        main:
            MOVI R0, #-8
            ASRI R1, R0, #1
            SHRI R2, R0, #1
            MOVI R3, #3
            SHLI R3, R3, #4
            HALT
        """)
        assert result.signed_register(1) == -4
        assert result.register(2) == 0x7FFFFFFC
        assert result.register(3) == 48

    def test_bitwise(self):
        result = run("""
        main:
            MOVI R0, #0xFF
            ANDI R1, R0, #0x0F
            ORI R2, R0, #0x100
            XORI R3, R0, #0xFF
            HALT
        """)
        assert result.register(1) == 0x0F
        assert result.register(2) == 0x1FF
        assert result.register(3) == 0


class TestControlFlow:
    def test_loop_executes_n_times(self):
        result = run("""
        main:
            MOVI R0, #0
            MOVI R1, #0
        loop:
            ADDI R1, R1, #5
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
            HALT
        """)
        assert result.register(0) == 10
        assert result.register(1) == 50

    def test_signed_conditions(self):
        result = run("""
        main:
            MOVI R0, #-1
            CMPI R0, #1
            BLT yes
            MOVI R1, #0
            HALT
        yes:
            MOVI R1, #1
            HALT
        """)
        assert result.register(1) == 1

    def test_unsigned_conditions(self):
        # -1 unsigned is the largest word: HS (unsigned >=) holds.
        result = run("""
        main:
            MOVI R0, #-1
            CMPI R0, #1
            BHS yes
            MOVI R1, #0
            HALT
        yes:
            MOVI R1, #1
            HALT
        """)
        assert result.register(1) == 1

    def test_call_return(self):
        result = run("""
        main:
            MOVI R0, #5
            BL square
            HALT
        square:
            MUL R0, R0, R0
            RET
        """)
        assert result.register(0) == 25

    def test_nested_calls(self):
        result = run("""
        main:
            MOVI R0, #2
            BL f
            HALT
        f:
            PUSH {LR}
            BL g
            ADDI R0, R0, #1
            POP {LR}
            RET
        g:
            MUL R0, R0, R0
            RET
        """)
        assert result.register(0) == 5

    def test_corrupted_return_address_traps(self):
        source = """
        main:
            BL f
            HALT
        f:
            MOVI LR, #0x1000
            RET
        """
        with pytest.raises(SimulationError):
            run(source)

    def test_out_of_fuel(self):
        with pytest.raises(OutOfFuel):
            run("main: B main\n", max_steps=100)


class TestMemory:
    def test_store_load(self):
        result = run("""
        main:
            LDA R1, cell
            MOVI R0, #123
            STR R0, [R1]
            MOVI R0, #0
            LDR R0, [R1]
            HALT
        .data
        cell: .word 0
        """)
        assert result.register(0) == 123

    def test_initialised_data(self):
        result = run("""
        main:
            LDA R1, value
            LDR R0, [R1]
            HALT
        .data
        value: .word 77
        """)
        assert result.register(0) == 77

    def test_indexed_addressing(self):
        result = run("""
        main:
            LDA R1, arr
            MOVI R2, #8
            LDR R0, [R1, R2]
            HALT
        .data
        arr: .word 10, 20, 30
        """)
        assert result.register(0) == 30

    def test_unaligned_access_traps(self):
        with pytest.raises(SimulationError):
            run("""
            main:
                MOVI R1, #0x7001
                LDR R0, [R1]
                HALT
            """)

    def test_write_to_text_traps(self):
        with pytest.raises(SimulationError):
            run("""
            main:
                MOVI R1, #0x1000
                MOVI R0, #0
                STR R0, [R1]
                HALT
            """)

    def test_push_pop(self):
        result = run("""
        main:
            MOVI R4, #1
            MOVI R5, #2
            PUSH {R4, R5}
            MOVI R4, #0
            MOVI R5, #0
            POP {R4, R5}
            HALT
        """)
        assert result.register(4) == 1
        assert result.register(5) == 2
        assert result.register(SP) == STACK_BASE


class TestStackTracking:
    def test_max_stack_usage(self):
        result = run("""
        main:
            PUSH {R4-R7}
            POP {R4-R7}
            HALT
        """)
        assert result.max_stack_usage == 16

    def test_nested_frames_accumulate(self):
        result = run("""
        main:
            PUSH {R4, LR}
            BL leaf
            POP {R4, LR}
            HALT
        leaf:
            PUSH {R4-R7}
            POP {R4-R7}
            RET
        """)
        assert result.max_stack_usage == 8 + 16


class TestTiming:
    def test_single_instruction_cost(self):
        # One HALT: 1 base cycle + I-miss penalty on a cold cache.
        config = MachineConfig.default()
        result = run("main: HALT\n", config=config)
        assert result.cycles == 1 + config.icache.miss_penalty

    def test_icache_hits_on_loop(self):
        config = MachineConfig.default()
        result = run("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #50
            BLT loop
            HALT
        """, config=config)
        # After the first iteration every fetch hits.
        assert result.fetch_misses <= 2   # at most 2 distinct lines
        assert result.fetch_hits > 100

    def test_taken_branch_penalty(self):
        config = MachineConfig(
            icache=CacheConfig(miss_penalty=0),
            dcache=CacheConfig(miss_penalty=0))
        taken = run("""
        main:
            MOVI R0, #0
            CMPI R0, #0
            BEQ target
            NOP
        target:
            HALT
        """, config=config)
        not_taken = run("""
        main:
            MOVI R0, #0
            CMPI R0, #1
            BEQ target
            NOP
        target:
            HALT
        """, config=config)
        # Same instruction count except the extra NOP executed when not
        # taken; taken run pays the branch penalty instead.
        assert taken.cycles == not_taken.cycles + \
            config.branch_penalty - 1

    def test_mul_extra_cycles(self):
        config = MachineConfig(
            icache=CacheConfig(miss_penalty=0),
            dcache=CacheConfig(miss_penalty=0))
        with_mul = run("main: MUL R0, R1, R2\n HALT\n", config=config)
        with_add = run("main: ADD R0, R1, R2\n HALT\n", config=config)
        assert with_mul.cycles == with_add.cycles + config.mul_extra

    def test_load_use_stall(self):
        config = MachineConfig(
            icache=CacheConfig(miss_penalty=0),
            dcache=CacheConfig(miss_penalty=0))
        stalled = run("""
        main:
            LDA R1, v
            LDR R0, [R1]
            ADDI R0, R0, #1
            HALT
        .data
        v: .word 9
        """, config=config)
        spaced = run("""
        main:
            LDA R1, v
            LDR R0, [R1]
            NOP
            ADDI R0, R0, #1
            HALT
        .data
        v: .word 9
        """, config=config)
        # The NOP adds 1 cycle but removes the 1-cycle stall.
        assert stalled.cycles == spaced.cycles

    def test_dcache_miss_penalty(self):
        hot = MachineConfig(icache=CacheConfig(miss_penalty=0),
                            dcache=CacheConfig(miss_penalty=7))
        result = run("""
        main:
            LDA R1, v
            LDR R0, [R1]
            LDR R2, [R1]
            HALT
        .data
        v: .word 1
        """, config=hot)
        assert result.data_misses == 1
        assert result.data_hits == 1

    def test_deterministic_replay(self):
        source = """
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #20
            BLT loop
            HALT
        """
        first = run(source)
        second = run(source)
        assert first.cycles == second.cycles
        assert first.registers == second.registers


class TestTraces:
    def test_access_trace_collected(self):
        result = run("""
        main:
            LDA R1, v
            LDR R0, [R1]
            STR R0, [R1]
            HALT
        .data
        v: .word 5
        """, collect_trace=True)
        loads = [e for e in result.access_trace if e.is_load]
        stores = [e for e in result.access_trace if not e.is_load]
        assert len(loads) == 1
        assert len(stores) == 1
        assert loads[0].address == stores[0].address

    def test_instruction_counts(self):
        result = run("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #5
            BLT loop
            HALT
        """)
        program = assemble("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #5
            BLT loop
            HALT
        """)
        loop = program.symbols["loop"]
        assert result.instruction_counts[loop] == 5
