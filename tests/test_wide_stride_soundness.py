"""Regression test for the wide-stride data-access soundness corner.

``repro.cache.analysis._lines_of_access`` lets congruence-aware
domains (strided intervals) expose the *sparse* value set of a scaled
array access, so a stride that skips whole cache lines produces a
candidate-line set with gaps instead of a dense range.  That is a
precision win — but it is only sound if every line the program
actually touches is in the sparse set, and if the resulting must/may
classifications survive a traced concrete run (the S4 obligation).

This pins the corner down end to end: a column walk whose stride (64
bytes) is four cache lines wide, analysed under the strided-interval
domain, cross-checked against the simulator's access events — under
both timing models and with loop peeling (whose first-iteration
copies re-classify the compulsory misses).
"""

import pytest

from repro.analysis import StridedInterval
from repro.cfg.contexts import VIVU
from repro.lang import compile_program
from repro.sim import Simulator
from repro.verify import BoundChecker, VerificationReport, verify_bounds
from repro.wcet import analyze_wcet

# Stride-16 walk through int m[256]: byte stride 64 = 4 cache lines of
# the default 16-byte geometry, so a dense-range approximation would
# include 3 untouched lines per step while the sparse set must skip
# exactly those and no more.
COLUMN_WALK = """
int m[256];
int colsum;
void main() {
    int j;
    colsum = 0;
    for (j = 0; j < 16; j = j + 1) {
        colsum = colsum + m[j * 16 + 3];
    }
}
"""


@pytest.fixture(scope="module")
def analyzed():
    program = compile_program(COLUMN_WALK)
    return program, analyze_wcet(program, domain=StridedInterval)


def test_stride_produces_a_sparse_line_set(analyzed):
    program, wcet = analyzed
    config = wcet.dcache.config
    sparse = []
    for item in wcet.dcache.all_accesses():
        values = item.access.address.possible_values(1024)
        if values is None or len(values) < 2:
            continue
        lines = sorted({config.line_of(v) for v in values})
        gaps = sum(b - a - 1 for a, b in zip(lines, lines[1:]))
        if gaps:
            sparse.append((lines, gaps))
    assert sparse, "expected at least one line-skipping strided access"
    lines, gaps = max(sparse, key=lambda entry: entry[1])
    # Stride 64 over 16-byte lines: consecutive candidates are 4 apart.
    assert all(b - a == 4 for a, b in zip(lines, lines[1:]))


def test_sparse_lines_cover_every_concrete_access(analyzed):
    program, wcet = analyzed
    config = wcet.dcache.config
    simulator = Simulator(program, config=wcet.config, collect_trace=True)
    simulator.run()
    candidate_lines = {}
    for item in wcet.dcache.all_accesses():
        pc = item.access.instruction.address
        values = item.access.address.possible_values(1024)
        if values is None:
            continue
        candidate_lines.setdefault(pc, set()).update(
            config.line_of(v) for v in values)
    checked = 0
    for event in simulator.access_trace:
        lines = candidate_lines.get(event.pc)
        if lines is None:
            continue
        checked += 1
        assert config.line_of(event.address) in lines, (
            f"access at 0x{event.pc:x} touched line "
            f"{config.line_of(event.address)} outside the sparse "
            f"candidate set {sorted(lines)}")
    assert checked, "trace covered no strided accesses"


def test_classifications_sound_against_traced_run(analyzed):
    program, wcet = analyzed
    checker = BoundChecker(program, wcet)
    report = VerificationReport()
    simulator = Simulator(program, config=wcet.config, collect_trace=True)
    checker.check_run(simulator.run(), report)
    assert report.ok, [str(v) for v in report.violations]


@pytest.mark.parametrize("model", ["additive", "krisc5"])
def test_stride_corner_sound_under_both_models_and_peeling(model):
    program = compile_program(COLUMN_WALK)
    additive = analyze_wcet(program, domain=StridedInterval,
                            context_policy=VIVU(peel=1))
    wcet = analyze_wcet(program, domain=StridedInterval,
                        context_policy=VIVU(peel=1),
                        pipeline_model=model)
    report = verify_bounds(program, wcet, reference=additive)
    assert report.ok, [str(v) for v in report.violations]
