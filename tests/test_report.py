"""Tests for report generation and DOT export."""

import pytest

from repro.isa import assemble
from repro.report import wcet_dot, wcet_report, worst_case_path_table
from repro.stack import analyze_stack
from repro.wcet import analyze_wcet

SOURCE = """
main:
    MOVI R4, #0
loop:
    BL helper
    ADDI R4, R4, #1
    CMPI R4, #5
    BLT loop
    HALT
helper:
    PUSH {R4}
    MOVI R4, #1
    POP {R4}
    RET
"""


@pytest.fixture(scope="module")
def analysis():
    program = assemble(SOURCE)
    return program, analyze_wcet(program), analyze_stack(program)


class TestTextReport:
    def test_contains_all_phases(self, analysis):
        _program, wcet, stack = analysis
        text = wcet_report(wcet, stack)
        for phase in ("CFG reconstruction", "value analysis",
                      "loop bounds", "cache analysis",
                      "pipeline analysis", "path analysis"):
            assert phase in text

    def test_reports_bound_and_loops(self, analysis):
        _program, wcet, stack = analysis
        text = wcet_report(wcet, stack)
        assert f"WCET BOUND: {wcet.wcet_cycles} cycles" in text
        assert "5 iterations [affine]" in text

    def test_stack_section(self, analysis):
        _program, wcet, stack = analysis
        text = wcet_report(wcet, stack)
        assert "StackAnalyzer" in text
        assert "helper" in text

    def test_without_stack_result(self, analysis):
        _program, wcet, _stack = analysis
        text = wcet_report(wcet)
        assert "StackAnalyzer" not in text
        assert "WCET BOUND" in text

    def test_path_table_lists_loop_block(self, analysis):
        program, wcet, _stack = analysis
        table = worst_case_path_table(wcet)
        assert "count" in table
        # The helper body executes 5 times in the worst case.
        assert " 5 " in table


class TestDotExport:
    def test_valid_digraph_structure(self, analysis):
        _program, wcet, _stack = analysis
        dot = wcet_dot(wcet)
        assert dot.startswith("digraph wcet {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == wcet.graph.edge_count()

    def test_call_and_return_edges_styled(self, analysis):
        _program, wcet, _stack = analysis
        dot = wcet_dot(wcet)
        assert "darkgreen" in dot    # call edge
        assert "purple" in dot       # return edge

    def test_counts_annotated(self, analysis):
        _program, wcet, _stack = analysis
        dot = wcet_dot(wcet)
        assert "cyc x" in dot

    def test_instruction_listing_mode(self, analysis):
        _program, wcet, _stack = analysis
        dot = wcet_dot(wcet, include_instructions=True)
        assert "ADDI R4, R4, #1" in dot

    def test_condition_labels_on_edges(self, analysis):
        _program, wcet, _stack = analysis
        dot = wcet_dot(wcet)
        assert "[LT]" in dot or "[GE]" in dot
