"""Tests for CFG reconstruction from binaries."""

import pytest

from repro.isa import Opcode, assemble
from repro.cfg import (CFGError, EdgeKind, build_cfg, expand_task,
                       find_loops)

SIMPLE_LOOP = """
main:
    MOVI R0, #10
loop:
    SUBI R0, R0, #1
    CMPI R0, #0
    BNE loop
    HALT
"""

IF_ELSE = """
main:
    CMPI R0, #5
    BLT less
    MOVI R1, #1
    B join
less:
    MOVI R1, #2
join:
    HALT
"""

CALLS = """
main:
    MOVI R0, #3
    BL double
    BL double
    HALT
double:
    ADD R0, R0, R0
    RET
"""


class TestBlockFormation:
    def test_simple_loop_blocks(self):
        binary = build_cfg(assemble(SIMPLE_LOOP))
        cfg = binary.entry_function
        starts = sorted(cfg.blocks)
        # main block, loop body, halt block
        symbols = binary.program.symbols
        assert symbols["main"] in starts
        assert symbols["loop"] in starts
        assert len(starts) == 3

    def test_block_instructions_are_contiguous(self):
        binary = build_cfg(assemble(SIMPLE_LOOP))
        for cfg in binary.functions.values():
            for block in cfg.blocks.values():
                addresses = [i.address for i in block]
                assert addresses == list(
                    range(block.start, block.end, 4))

    def test_branch_edges(self):
        binary = build_cfg(assemble(SIMPLE_LOOP))
        cfg = binary.entry_function
        loop = binary.program.symbols["loop"]
        edges = cfg.successors(loop)
        kinds = {(e.kind, e.target) for e in edges}
        halt_block = loop + 12
        assert (EdgeKind.TAKEN, loop) in kinds
        assert (EdgeKind.FALLTHROUGH, halt_block) in kinds

    def test_conditional_edges_carry_conditions(self):
        binary = build_cfg(assemble(IF_ELSE))
        cfg = binary.entry_function
        entry_edges = cfg.successors(cfg.entry)
        conds = {e.kind: e.cond for e in entry_edges}
        assert conds[EdgeKind.TAKEN].name == "LT"
        assert conds[EdgeKind.FALLTHROUGH].name == "GE"

    def test_diamond_shape(self):
        binary = build_cfg(assemble(IF_ELSE))
        cfg = binary.entry_function
        join = binary.program.symbols["join"]
        preds = cfg.predecessors(join)
        assert len(preds) == 2


class TestCallGraph:
    def test_functions_discovered(self):
        binary = build_cfg(assemble(CALLS))
        names = {f.name for f in binary.functions.values()}
        assert names == {"main", "double"}

    def test_call_sites_recorded(self):
        binary = build_cfg(assemble(CALLS))
        main = binary.program.symbols["main"]
        double = binary.program.symbols["double"]
        callees = binary.call_graph.calls[main]
        assert [callee for _, callee in callees] == [double, double]

    def test_call_block_fallthrough(self):
        binary = build_cfg(assemble(CALLS))
        cfg = binary.entry_function
        for block in cfg.call_sites():
            succs = cfg.successors(block.start)
            assert len(succs) == 1
            assert succs[0].kind is EdgeKind.FALLTHROUGH
            assert succs[0].target == block.last.address + 4

    def test_recursion_rejected(self):
        source = """
        main:
            BL main
            HALT
        """
        binary = build_cfg(assemble(source))
        with pytest.raises(RecursionError):
            binary.call_graph.topological_order(binary.entry)

    def test_mutual_recursion_rejected(self):
        source = """
        main:
            BL even
            HALT
        even:
            BL odd
            RET
        odd:
            BL even
            RET
        """
        binary = build_cfg(assemble(source))
        with pytest.raises(RecursionError) as excinfo:
            binary.call_graph.topological_order(binary.entry)
        assert "even" in str(excinfo.value)


class TestReconstructionErrors:
    def test_unannotated_indirect_branch(self):
        source = """
        main:
            BR R0
        """
        with pytest.raises(CFGError):
            build_cfg(assemble(source))

    def test_indirect_branch_with_annotation(self):
        program = assemble("""
        main:
            BR R0
        a:  HALT
        b:  HALT
        """)
        a, b = program.symbols["a"], program.symbols["b"]
        br_addr = program.symbols["main"]
        binary = build_cfg(program, indirect_targets={br_addr: [a, b]})
        cfg = binary.entry_function
        targets = {e.target for e in cfg.successors(cfg.entry)}
        assert targets == {a, b}

    def test_branch_to_non_code(self):
        source = """
        main:
            B far
        .data
        far: .word 0
        """
        # "far" is a data symbol; branching there must fail.
        program = assemble(source)
        with pytest.raises(CFGError):
            build_cfg(program)


class TestTaskGraphExpansion:
    def test_each_call_site_gets_a_context(self):
        binary = build_cfg(assemble(CALLS))
        graph = expand_task(binary)
        contexts = graph.contexts()
        # Root context plus one per call site.
        assert len(contexts) == 3

    def test_call_and_return_edges(self):
        binary = build_cfg(assemble(CALLS))
        graph = expand_task(binary)
        kinds = {e.kind for node in graph.nodes()
                 for e in graph.successors(node)}
        assert EdgeKind.CALL in kinds
        assert EdgeKind.RETURN in kinds

    def test_entry_node(self):
        binary = build_cfg(assemble(CALLS))
        graph = expand_task(binary)
        assert graph.entry.context == ()
        assert graph.entry.block == binary.entry

    def test_single_exit_for_straightline(self):
        binary = build_cfg(assemble("main: HALT\n"))
        graph = expand_task(binary)
        assert graph.exit_nodes() == [graph.entry]

    def test_return_edge_reaches_return_site(self):
        binary = build_cfg(assemble(CALLS))
        graph = expand_task(binary)
        return_edges = [e for node in graph.nodes()
                        for e in graph.successors(node)
                        if e.kind is EdgeKind.RETURN]
        for edge in return_edges:
            # Return site is the instruction after its context's call site.
            call_site = edge.source.context[-1]
            assert edge.target.block == call_site + 4
            assert edge.target.context == edge.source.context[:-1]

    def test_nested_calls_expand_transitively(self):
        source = """
        main:
            BL outer
            HALT
        outer:
            BL inner
            RET
        inner:
            RET
        """
        binary = build_cfg(assemble(source))
        graph = expand_task(binary)
        depths = {len(node.context) for node in graph.nodes()}
        assert depths == {0, 1, 2}

    def test_topological_order_starts_at_entry(self):
        binary = build_cfg(assemble(CALLS))
        graph = expand_task(binary)
        order = graph.topological_order()
        assert order[0] == graph.entry
        assert len(order) == graph.node_count()


class TestLoopDetection:
    def test_single_loop(self):
        binary = build_cfg(assemble(SIMPLE_LOOP))
        graph = expand_task(binary)
        forest = find_loops(graph.entry, graph.adjacency())
        assert len(forest) == 1
        (loop,) = forest
        assert loop.header.block == binary.program.symbols["loop"]
        assert loop.depth == 1

    def test_nested_loops(self):
        source = """
        main:
            MOVI R0, #0
        outer:
            MOVI R1, #0
        inner:
            ADDI R1, R1, #1
            CMPI R1, #4
            BLT inner
            ADDI R0, R0, #1
            CMPI R0, #3
            BLT outer
            HALT
        """
        binary = build_cfg(assemble(source))
        graph = expand_task(binary)
        forest = find_loops(graph.entry, graph.adjacency())
        assert len(forest) == 2
        inner = next(l for l in forest
                     if l.header.block == binary.program.symbols["inner"])
        outer = next(l for l in forest
                     if l.header.block == binary.program.symbols["outer"])
        assert inner.parent is outer
        assert inner.depth == 2
        assert inner.body < outer.body

    def test_loop_exit_edges(self):
        binary = build_cfg(assemble(SIMPLE_LOOP))
        graph = expand_task(binary)
        forest = find_loops(graph.entry, graph.adjacency())
        (loop,) = forest
        exits = loop.exit_edges(graph.adjacency())
        assert len(exits) == 1

    def test_no_loops_in_straightline(self):
        binary = build_cfg(assemble(IF_ELSE))
        graph = expand_task(binary)
        forest = find_loops(graph.entry, graph.adjacency())
        assert len(forest) == 0

    def test_loop_in_callee_appears_per_context(self):
        source = """
        main:
            BL spin
            BL spin
            HALT
        spin:
            MOVI R0, #8
        w:
            SUBI R0, R0, #1
            CMPI R0, #0
            BNE w
            RET
        """
        binary = build_cfg(assemble(source))
        graph = expand_task(binary)
        forest = find_loops(graph.entry, graph.adjacency())
        # The callee loop is instantiated once per call context.
        assert len(forest) == 2


class TestDominators:
    def test_entry_dominates_all(self):
        from repro.cfg import compute_dominators, dominates
        binary = build_cfg(assemble(IF_ELSE))
        graph = expand_task(binary)
        idom = compute_dominators(graph.entry, graph.adjacency())
        for node in graph.nodes():
            assert dominates(idom, graph.entry, node)

    def test_join_not_dominated_by_branches(self):
        from repro.cfg import compute_dominators, dominates
        binary = build_cfg(assemble(IF_ELSE))
        graph = expand_task(binary)
        idom = compute_dominators(graph.entry, graph.adjacency())
        symbols = binary.program.symbols
        join = next(n for n in graph.nodes() if n.block == symbols["join"])
        less = next(n for n in graph.nodes() if n.block == symbols["less"])
        assert not dominates(idom, less, join)
        assert idom[join] == graph.entry

    def test_dominance_frontier_of_branch_arms(self):
        from repro.cfg import dominance_frontier
        binary = build_cfg(assemble(IF_ELSE))
        graph = expand_task(binary)
        frontier = dominance_frontier(graph.entry, graph.adjacency())
        symbols = binary.program.symbols
        less = next(n for n in graph.nodes() if n.block == symbols["less"])
        join = next(n for n in graph.nodes() if n.block == symbols["join"])
        assert frontier[less] == {join}
