"""Unit tests for the abstract machine state: registers, flags,
memory, and difference aliases."""

import pytest

from repro.analysis import Interval
from repro.analysis.state import (AbstractMemory, AbstractState,
                                  FlagsInfo)
from repro.analysis.transfer import (refine_by_condition,
                                     transfer_instruction)
from repro.isa.instructions import Cond, Instruction, Opcode


def fresh_state(**regs):
    state = AbstractState(Interval)
    for reg, (lo, hi) in regs.items():
        state.regs[int(reg[1:])] = Interval(lo, hi)
    return state


class TestAbstractMemory:
    def test_strong_update_exact_address(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(5))
        assert memory.load(Interval.const(0x8000)) == Interval.const(5)

    def test_load_unknown_address_is_top(self):
        memory = AbstractMemory(Interval)
        assert memory.load(Interval.const(0x9000)).is_top()

    def test_weak_update_joins(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(1))
        memory.store(Interval.const(0x8004), Interval.const(2))
        memory.store(Interval(0x8000, 0x8004), Interval.const(9))
        assert memory.load(Interval.const(0x8000)) == Interval(1, 9)
        assert memory.load(Interval.const(0x8004)) == Interval(2, 9)

    def test_wide_store_havocs_range(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(1))
        memory.store(Interval.const(0x20000), Interval.const(2))
        memory.store(Interval(0x7000, 0x10000), Interval.const(0))
        assert memory.load(Interval.const(0x8000)).is_top()
        assert memory.load(Interval.const(0x20000)) == Interval.const(2)

    def test_range_load_joins_entries(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(3))
        memory.store(Interval.const(0x8004), Interval.const(7))
        loaded = memory.load(Interval(0x8000, 0x8004))
        assert loaded == Interval(3, 7)

    def test_range_load_with_gap_is_top(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(3))
        # 0x8004 untracked -> join with top.
        assert memory.load(Interval(0x8000, 0x8004)).is_top()

    def test_join_intersects_keys(self):
        a, b = AbstractMemory(Interval), AbstractMemory(Interval)
        a.store(Interval.const(0x8000), Interval.const(1))
        a.store(Interval.const(0x8004), Interval.const(2))
        b.store(Interval.const(0x8004), Interval.const(5))
        joined = a.join(b)
        assert 0x8000 not in joined.entries
        assert joined.entries[0x8004] == Interval(2, 5)

    def test_leq(self):
        small, big = AbstractMemory(Interval), AbstractMemory(Interval)
        small.store(Interval.const(0x8000), Interval.const(2))
        big.store(Interval.const(0x8000), Interval(0, 5))
        assert small.leq(big)
        assert not big.leq(small)
        assert big.leq(AbstractMemory(Interval))   # empty = all top


class TestDifferenceAliases:
    def test_alias_created_by_addi(self):
        state = fresh_state(R1=(0, 10))
        instr = Instruction(Opcode.ADDI, rd=2, rs1=1, imm=3,
                            address=0x1000)
        transfer_instruction(state, instr)
        assert state.aliases[2] == (1, 3)

    def test_alias_cleared_on_base_write(self):
        state = fresh_state(R1=(0, 10))
        transfer_instruction(state, Instruction(
            Opcode.ADDI, rd=2, rs1=1, imm=3, address=0))
        transfer_instruction(state, Instruction(
            Opcode.MOVI, rd=1, imm=0, address=4))
        assert 2 not in state.aliases

    def test_refinement_propagates_to_base(self):
        # R2 = R1 + 3; assume R2 < 10  ==>  R1 < 7.
        state = fresh_state(R1=(0, 100))
        transfer_instruction(state, Instruction(
            Opcode.ADDI, rd=2, rs1=1, imm=3, address=0))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=2, imm=10, address=4))
        refined = refine_by_condition(state, Cond.LT)
        assert refined.get(2).signed_bounds() == (3, 9)
        assert refined.get(1).signed_bounds() == (0, 6)

    def test_refinement_propagates_to_dependents(self):
        # R2 = R1 + 4; assume R1 >= 8  ==>  R2 >= 12.
        state = fresh_state(R1=(0, 100))
        transfer_instruction(state, Instruction(
            Opcode.ADDI, rd=2, rs1=1, imm=4, address=0))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=1, imm=8, address=4))
        refined = refine_by_condition(state, Cond.GE)
        assert refined.get(1).signed_bounds()[0] == 8
        assert refined.get(2).signed_bounds()[0] == 12

    def test_mov_creates_zero_offset_alias(self):
        state = fresh_state(R1=(5, 9))
        transfer_instruction(state, Instruction(
            Opcode.MOV, rd=3, rs1=1, address=0))
        assert state.aliases[3] == (1, 0)

    def test_join_keeps_only_common_aliases(self):
        a = fresh_state(R1=(0, 10))
        transfer_instruction(a, Instruction(
            Opcode.ADDI, rd=2, rs1=1, imm=3, address=0))
        b = fresh_state(R1=(0, 10))
        transfer_instruction(b, Instruction(
            Opcode.ADDI, rd=2, rs1=1, imm=5, address=0))
        assert 2 not in a.join(b).aliases
        c = fresh_state(R1=(0, 10))
        transfer_instruction(c, Instruction(
            Opcode.ADDI, rd=2, rs1=1, imm=3, address=0))
        assert a.join(c).aliases[2] == (1, 3)


class TestFlags:
    def test_flags_recorded_by_cmp(self):
        state = fresh_state(R1=(0, 5), R2=(3, 3))
        transfer_instruction(state, Instruction(
            Opcode.CMP, rs1=1, rs2=2, address=0))
        assert state.flags.left_reg == 1
        assert state.flags.right_reg == 2

    def test_flag_link_invalidated_on_write(self):
        state = fresh_state(R1=(0, 5))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=1, imm=3, address=0))
        transfer_instruction(state, Instruction(
            Opcode.MOVI, rd=1, imm=9, address=4))
        assert state.flags.left_reg is None
        # The recorded value is still usable for feasibility.
        assert state.flags.left == Interval(0, 5)

    def test_refinement_after_invalidation_skips_register(self):
        state = fresh_state(R1=(0, 5))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=1, imm=3, address=0))
        transfer_instruction(state, Instruction(
            Opcode.MOVI, rd=1, imm=9, address=4))
        refined = refine_by_condition(state, Cond.LT)
        # R1 now holds 9 and must not be refined by the stale compare.
        assert refined.get(1) == Interval.const(9)

    def test_infeasible_condition_gives_bottom(self):
        state = fresh_state(R1=(5, 5))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=1, imm=5, address=0))
        assert refine_by_condition(state, Cond.NE).is_bottom()
        assert not refine_by_condition(state, Cond.EQ).is_bottom()

    def test_unsigned_condition_refines_when_nonnegative(self):
        state = fresh_state(R1=(0, 100))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=1, imm=10, address=0))
        refined = refine_by_condition(state, Cond.LO)
        assert refined.get(1).signed_bounds() == (0, 9)

    def test_unsigned_condition_skipped_when_possibly_negative(self):
        state = fresh_state(R1=(-5, 100))
        transfer_instruction(state, Instruction(
            Opcode.CMPI, rs1=1, imm=10, address=0))
        refined = refine_by_condition(state, Cond.LO)
        # Signed/unsigned views differ: no refinement, but no bottom.
        assert refined.get(1).signed_bounds() == (-5, 100)


class TestStateLattice:
    def test_join_pointwise(self):
        a = fresh_state(R1=(0, 3))
        b = fresh_state(R1=(5, 9))
        assert a.join(b).get(1) == Interval(0, 9)

    def test_bottom_absorbs(self):
        a = fresh_state(R1=(0, 3))
        bottom = AbstractState.bottom_state(Interval)
        assert bottom.join(a).get(1) == Interval(0, 3)
        assert a.join(bottom).get(1) == Interval(0, 3)

    def test_leq_reflexive_and_ordered(self):
        small = fresh_state(R1=(2, 3))
        big = fresh_state(R1=(0, 9))
        assert small.leq(small)
        assert small.leq(big)
        assert not big.leq(small)

    def test_widen_drops_flags(self):
        a = fresh_state(R1=(0, 3))
        transfer_instruction(a, Instruction(
            Opcode.CMPI, rs1=1, imm=3, address=0))
        b = fresh_state(R1=(0, 4))
        widened = a.widen(b)
        assert widened.flags is None


class TestMemoryPartialOrder:
    """Regression pins for AbstractMemory.leq: an absent address means
    *top* on BOTH sides of the comparison.  The copy-on-write
    structural fast path (shared entry dict => leq) is only sound if
    this order is reflexive, and the fixpoint kernel's convergence
    check relies on the asymmetric absent-entry handling below."""

    def test_absent_on_right_means_top_accepts_anything(self):
        tracked = AbstractMemory(Interval)
        tracked.store(Interval.const(0x8000), Interval(0, 5))
        empty = AbstractMemory(Interval)
        # {0x8000: [0,5]} <= {} because the right side is all-top.
        assert tracked.leq(empty)

    def test_absent_on_left_means_top_fails_bounded_right(self):
        tracked = AbstractMemory(Interval)
        tracked.store(Interval.const(0x8000), Interval(0, 5))
        empty = AbstractMemory(Interval)
        # {} is all-top, which is NOT below a bounded entry.
        assert not empty.leq(tracked)

    def test_absent_left_accepts_explicit_top_right(self):
        explicit_top = AbstractMemory(Interval)
        explicit_top.entries[0x8000] = Interval.top()
        empty = AbstractMemory(Interval)
        # {} <= {0x8000: top}: implicit and explicit top coincide.
        assert empty.leq(explicit_top)
        assert explicit_top.leq(empty)

    def test_disjoint_tracked_words_are_asymmetric(self):
        a = AbstractMemory(Interval)
        a.store(Interval.const(0x8000), Interval(0, 5))
        b = AbstractMemory(Interval)
        b.store(Interval.const(0x9000), Interval(0, 5))
        # Each side's extra word is below the other's implicit top only
        # when the *other* side demands nothing non-top of it.
        assert not a.leq(b)     # a lacks bounded 0x9000
        assert not b.leq(a)     # b lacks bounded 0x8000

    def test_reflexive_and_pointwise(self):
        a = AbstractMemory(Interval)
        a.store(Interval.const(0x8000), Interval(2, 3))
        assert a.leq(a)
        wider = AbstractMemory(Interval)
        wider.store(Interval.const(0x8000), Interval(0, 9))
        assert a.leq(wider)
        assert not wider.leq(a)

    def test_join_drops_words_absent_in_either_side(self):
        a = AbstractMemory(Interval)
        a.store(Interval.const(0x8000), Interval(0, 5))
        a.store(Interval.const(0x8004), Interval(1, 1))
        b = AbstractMemory(Interval)
        b.store(Interval.const(0x8000), Interval(3, 7))
        joined = a.join(b)
        assert joined.entries.get(0x8000) == Interval(0, 7)
        # 0x8004 is top in b, so it must be top (absent) in the join.
        assert 0x8004 not in joined.entries


class TestCopyOnWrite:
    """AbstractState/AbstractMemory copies are O(1) and share storage
    until one side mutates."""

    def test_memory_copy_shares_until_store(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(1))
        clone = memory.copy()
        assert clone.entries is memory.entries
        clone.store(Interval.const(0x8004), Interval.const(2))
        assert clone.entries is not memory.entries
        assert 0x8004 not in memory.entries
        assert memory.load(Interval.const(0x8000)) == Interval.const(1)

    def test_original_can_mutate_after_copy_without_leaking(self):
        memory = AbstractMemory(Interval)
        memory.store(Interval.const(0x8000), Interval.const(1))
        clone = memory.copy()
        memory.store(Interval.const(0x8000), Interval.const(9))
        assert clone.load(Interval.const(0x8000)) == Interval.const(1)

    def test_state_copy_shares_registers_until_set(self):
        state = fresh_state(R1=(0, 3))
        clone = state.copy()
        assert clone.regs is state.regs
        clone.set(2, Interval.const(7))
        assert clone.regs is not state.regs
        assert state.get(2).is_top()
        assert clone.get(1) == Interval(0, 3)

    def test_alias_maps_do_not_leak_across_copies(self):
        state = fresh_state(R1=(0, 3))
        state.set(2, state.get(1))
        state.set_alias(2, 1, 0)
        clone = state.copy()
        clone.set(2, Interval.const(5))     # drops the alias in clone
        assert state.aliases.get(2) == (1, 0)
        assert 2 not in clone.aliases

    def test_refine_register_materialises(self):
        state = fresh_state(R1=(0, 10))
        clone = state.copy()
        clone.refine_register(1, Interval(0, 4))
        assert clone.get(1) == Interval(0, 4)
        assert state.get(1) == Interval(0, 10)

    def test_same_structure_fast_paths(self):
        state = fresh_state(R1=(0, 3))
        clone = state.copy()
        assert state.same_structure(clone)
        assert state.leq(clone) and clone.leq(state)
        joined = state.join(clone)
        assert joined.leq(state) and state.leq(joined)
        clone.set(1, Interval(0, 99))
        assert not state.same_structure(clone)
        assert state.get(1) == Interval(0, 3)
