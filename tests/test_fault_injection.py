"""Chaos suite: fault injection across the scheduler, cache, and serve.

Drives :mod:`repro.faults` through every injection site and pins the
PR's robustness contract: under injected worker kills, artifact
corruption, and full disks a sweep still completes **every** row with
bit-identical golden bounds (degrading to redundant work, never to a
wrong or missing result), the serve daemon cancels and times out jobs
cooperatively, and a journalled server answers for finished jobs
across a SIGKILL restart.
"""

import glob
import os
import re
import subprocess
import sys
import threading
import time

import pytest

from repro import faults
from repro.batch import (ArtifactCache, clear_process_caches,
                         compare_rows, expand_matrix, load_golden,
                         run_sweep)
from repro.batch import scheduler as dag_scheduler
from repro.serve import AnalysisService, ValidationError
from repro.serve import client as serve_client
from repro.serve.journal import TERMINAL_STATUSES, JobJournal

SMALL_MATRIX = "fibcall,bs:full,vivu:additive,krisc5"
GOLDEN = os.path.join(os.path.dirname(__file__), "golden_bounds.json")

QUICK = """
int result;

void main() {
    int i;
    int acc = 0;
    for (i = 0; i < 4; i = i + 1) {
        acc = acc + i;
    }
    result = acc;
}
"""

def _slow_source(functions=16, trips=16):
    """A program whose full x vivu / additive x krisc5 matrix takes
    on the order of a second to analyse — long enough that a job is
    reliably still in flight when a test cancels it or kills the
    server under it."""
    parts = ["int result;"]
    calls = []
    for n in range(functions):
        parts.append(f"""
int f{n}(int x) {{
    int i;
    int j;
    int acc = 0;
    for (i = 0; i < {trips}; i = i + 1) {{
        for (j = 0; j < {trips}; j = j + 1) {{
            if (acc > x) {{ acc = acc - j; }}
            else {{ acc = acc + i + x; }}
        }}
    }}
    return acc;
}}""")
        calls.append(f"    result = result + f{n}(result);")
    parts.append("void main() {\n" + "\n".join(calls) + "\n}")
    return "\n".join(parts)


#: Slow enough that a job is reliably still running when the test
#: cancels it / kills the server under it.
SLOW = _slow_source()

SLOW_MATRIX = {"source": SLOW, "policies": ["full", "vivu"],
               "models": ["additive", "krisc5"], "label": "slow"}


@pytest.fixture
def fault_env(monkeypatch):
    """Activate a $REPRO_FAULTS spec for one test, cleanly."""
    def activate(spec, seed=0):
        monkeypatch.setenv(faults.ENV_FAULTS, spec)
        monkeypatch.setenv(faults.ENV_SEED, str(seed))
        faults.reset()
    yield activate
    faults.reset()


def wait_terminal(service, job_id, timeout=180.0):
    deadline = time.monotonic() + timeout
    while True:
        record = service.job(job_id)
        if record["status"] in TERMINAL_STATUSES:
            return record
        assert time.monotonic() < deadline, f"job {job_id} stuck"
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# Fault-plan parsing and determinism.


class TestFaultPlan:
    def test_parse_spec(self):
        plan = faults.parse_faults(
            "worker_kill:0.2, corrupt_artifact:0.1,slow_task:0")
        assert plan.rates == {"worker_kill": 0.2,
                              "corrupt_artifact": 0.1,
                              "slow_task": 0.0}

    @pytest.mark.parametrize("spec", [
        "worker_kill",                  # no rate
        "frobnicate:0.5",               # unknown kind
        "worker_kill:maybe",            # not a number
        "worker_kill:1.5",              # out of range
        "disk_full:-0.1",
    ])
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            faults.parse_faults(spec)

    def test_rolls_are_deterministic_per_seed(self):
        first = faults.FaultPlan({"worker_kill": 0.3}, seed=7)
        second = faults.FaultPlan({"worker_kill": 0.3}, seed=7)
        rolls = [first.should("worker_kill") for _ in range(64)]
        assert rolls == [second.should("worker_kill")
                         for _ in range(64)]
        assert first.injected["worker_kill"] == sum(rolls) > 0

    def test_zero_rate_never_fires(self):
        plan = faults.FaultPlan({"worker_kill": 0.0})
        assert not any(plan.should("worker_kill") for _ in range(100))

    def test_active_plan_follows_env(self, fault_env):
        fault_env("slow_task:0.5", seed=3)
        plan = faults.active_plan()
        assert plan.rates == {"slow_task": 0.5}
        assert plan.seed == 3
        assert faults.active_plan() is plan       # memoised
        faults.reset()
        assert faults.active_plan() is not plan

    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
        faults.reset()
        assert faults.active_plan() is None
        # All site hooks are no-ops without a plan.
        faults.worker_task_started()
        faults.check_disk_full()
        assert faults.corrupt_payload(b"payload") == b"payload"


# ---------------------------------------------------------------------------
# Cache quarantining.


class TestQuarantine:
    def test_corrupt_object_is_quarantined_and_recomputed(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), salt="s")
        key = cache.key("material")
        cache.store(key, {"bound": 418})
        path = cache._object_path(key)
        with open(path, "r+b") as handle:    # truncate mid-pickle
            handle.truncate(os.path.getsize(path) // 2)

        cold = ArtifactCache(str(tmp_path), salt="s")
        hit, value = cold.lookup(key)
        assert not hit and value is None
        assert cold.quarantined == 1
        assert not os.path.exists(path)
        quarantined = glob.glob(str(tmp_path / "quarantine" / "*.pkl"))
        assert len(quarantined) == 1
        # The slot is free again: a recomputed artifact stores and
        # serves normally.
        cold.store(key, {"bound": 418})
        fresh = ArtifactCache(str(tmp_path), salt="s")
        hit, value = fresh.lookup(key)
        assert hit and value == {"bound": 418}
        assert fresh.quarantined == 0

    def test_vanished_object_is_a_plain_miss_not_quarantine(
            self, tmp_path):
        cache = ArtifactCache(str(tmp_path), salt="s")
        key = cache.key("material")
        cache.store(key, "value")
        os.unlink(cache._object_path(key))
        cold = ArtifactCache(str(tmp_path), salt="s")
        hit, _ = cold.lookup(key)
        assert not hit
        assert cold.quarantined == 0


# ---------------------------------------------------------------------------
# Scheduler retry / rebuild / degraded chaos.  All of these must end
# with complete rows and golden bounds — faults cost work, not results.


_REAL_PHASE_TASK = dag_scheduler._phase_task
_FLAKY_DIR = None


def _flaky_phase_task(payload):
    """Fails each distinct phase task exactly once (cross-process
    markers on disk), then delegates to the real task."""
    template = payload[1]
    marker = os.path.join(_FLAKY_DIR,
                          re.sub(r"[^\w.-]", "_", template))
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return _REAL_PHASE_TASK(payload)
    return {"pid": os.getpid(), "error": "injected flake",
            "seconds": 0.0}


class TestSchedulerChaos:
    @pytest.fixture(autouse=True)
    def _fork_only(self):
        if dag_scheduler._pool_context() is None:
            pytest.skip("needs fork start method")

    def test_flaky_tasks_retry_to_golden_rows(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setattr(sys.modules[__name__], "_FLAKY_DIR",
                            str(tmp_path))
        monkeypatch.setattr(dag_scheduler, "_phase_task",
                            _flaky_phase_task)
        jobs = expand_matrix("fibcall:full:additive,krisc5")
        clear_process_caches()
        result = run_sweep(jobs, parallel=2)
        assert result.errors == []
        assert compare_rows(result.rows, load_golden(GOLDEN)) == []
        stats = result.scheduler
        assert stats["retries"] > 0
        assert stats["pool_rebuilds"] == 0

    def test_worker_kill_chaos_completes_with_golden_bounds(
            self, fault_env):
        fault_env("worker_kill:0.3")
        jobs = expand_matrix(SMALL_MATRIX)
        clear_process_caches()
        result = run_sweep(jobs, parallel=2)
        assert result.errors == []
        assert compare_rows(result.rows, load_golden(GOLDEN)) == []
        stats = result.scheduler
        assert stats["retries"] > 0
        assert stats["pool_rebuilds"] > 0

    def test_corruption_chaos_quarantines_and_stays_golden(
            self, fault_env, tmp_path):
        fault_env("corrupt_artifact:0.5")
        jobs = expand_matrix(SMALL_MATRIX)
        golden = load_golden(GOLDEN)
        clear_process_caches()
        first = run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        assert first.errors == []
        assert compare_rows(first.rows, golden) == []
        # The corruption only bites on *cold* reads: a second sweep
        # with fresh worker memos hits the truncated disk objects,
        # quarantines them, and recomputes to the same bounds.
        clear_process_caches()
        second = run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        assert second.errors == []
        assert compare_rows(second.rows, golden) == []
        assert second.scheduler["quarantined"] > 0
        assert glob.glob(str(tmp_path / "quarantine" / "*.pkl"))

    def test_disk_full_chaos_degrades_to_uncached(self, fault_env,
                                                  tmp_path):
        fault_env("disk_full:0.3")
        jobs = expand_matrix(SMALL_MATRIX)
        clear_process_caches()
        result = run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        assert result.errors == []
        assert compare_rows(result.rows, load_golden(GOLDEN)) == []


# ---------------------------------------------------------------------------
# Serve: cancellation, deadlines, bounded job table.


class TestServeLifecycle:
    def test_pending_and_running_jobs_cancel(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=1)
        try:
            slow_id = service.submit(SLOW_MATRIX)
            quick_id = service.submit({"source": QUICK})
            # quick is queued behind slow on the single worker: the
            # cancel wins before it ever starts.
            record = service.cancel(quick_id)
            assert record["cancel_requested"]
            # slow is mid-analysis: the cooperative check between
            # phase tasks picks the cancel up.
            service.cancel(slow_id)
            assert wait_terminal(service, slow_id)["status"] \
                == "cancelled"
            assert wait_terminal(service, quick_id)["status"] \
                == "cancelled"
            # Cancelling a finished job never un-finishes it.
            done_id = service.submit({"source": QUICK})
            wait_terminal(service, done_id)
            record = service.cancel(done_id)
            assert record["status"] == "done"
            assert "cancel_requested" not in record
            assert service.cancel("job-999") is None
        finally:
            service.close()

    def test_deadline_expires_into_timeout_status(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=1)
        try:
            job_id = service.submit({"source": QUICK,
                                     "timeout_seconds": 1e-9})
            record = wait_terminal(service, job_id)
            assert record["status"] == "timeout"
            assert "deadline" in record["error"]
            # The same request without a deadline completes.
            ok = service.submit({"source": QUICK})
            assert wait_terminal(service, ok)["status"] == "done"
        finally:
            service.close()

    @pytest.mark.parametrize("value", [0, -1, True, "5", [5]])
    def test_bad_timeout_seconds_rejected(self, value):
        with pytest.raises(ValidationError):
            from repro.serve import AnalysisRequest
            AnalysisRequest({"source": QUICK, "timeout_seconds": value})

    def test_job_table_is_a_bounded_lru(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=1, max_jobs=3)
        try:
            ids = []
            for index in range(5):
                job_id = service.submit({"source": QUICK,
                                         "label": f"lru-{index}"})
                ids.append(job_id)
                wait_terminal(service, job_id)
            stats = service.stats()["jobs"]
            assert stats["total"] <= 3
            assert stats["jobs_evicted"] >= 2
            assert service.job(ids[0]) is None       # evicted
            assert service.job(ids[-1])["status"] == "done"
        finally:
            service.close()

    def test_stats_count_new_statuses(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=1)
        try:
            job_id = service.submit({"source": QUICK,
                                     "timeout_seconds": 1e-9})
            wait_terminal(service, job_id)
            jobs = service.stats()["jobs"]
            for status in ("cancelled", "timeout", "interrupted"):
                assert status in jobs
            assert jobs["timeout"] == 1
            assert "quarantined" in service.stats()["cache"]
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Journal: replay semantics.


class TestJournal:
    def test_replay_folds_transitions(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append({"id": "job-1", "status": "pending",
                        "label": "x"})
        journal.append({"id": "job-1", "status": "running"})
        journal.append({"id": "job-1", "status": "done",
                        "rows": [{"wcet_cycles": 418}]})
        journal.close()
        records, last_id = JobJournal(str(tmp_path)).replay()
        assert last_id == 1
        assert records["job-1"]["status"] == "done"
        assert records["job-1"]["label"] == "x"
        assert records["job-1"]["rows"] == [{"wcet_cycles": 418}]

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append({"id": "job-1", "status": "pending"})
        journal.append({"id": "job-1", "status": "done"})
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"id": "job-2", "status": "don')   # torn
        records, last_id = JobJournal(str(tmp_path)).replay()
        assert records["job-1"]["status"] == "done"
        assert "job-2" not in records
        assert last_id == 1

    def test_nonterminal_jobs_replay_as_interrupted(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append({"id": "job-1", "status": "pending"})
        journal.append({"id": "job-2", "status": "pending"})
        journal.append({"id": "job-2", "status": "running"})
        journal.append({"id": "job-3", "status": "done"})
        journal.close()
        records, last_id = JobJournal(str(tmp_path)).replay()
        assert last_id == 3
        assert records["job-1"]["status"] == "interrupted"
        assert records["job-2"]["status"] == "interrupted"
        assert records["job-3"]["status"] == "done"

    def test_service_restart_replays_and_resumes_numbering(
            self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        cache_dir = str(tmp_path / "cache")
        first = AnalysisService(cache_dir=cache_dir, workers=1,
                                journal_dir=journal_dir)
        try:
            job_id = first.submit({"source": QUICK, "label": "before"})
            service_record = wait_terminal(first, job_id)
        finally:
            first.close()
        # Simulate a job the crash caught in flight.
        JobJournal(journal_dir).append({"id": "job-9",
                                        "status": "running"})

        second = AnalysisService(cache_dir=cache_dir, workers=1,
                                 journal_dir=journal_dir)
        try:
            replayed = second.job(job_id)
            assert replayed["status"] == "done"
            assert replayed["replayed"] is True
            assert replayed["rows"] == service_record["rows"]
            assert second.job("job-9")["status"] == "interrupted"
            assert second.jobs_interrupted == 1
            # Numbering resumes past everything replayed.
            next_id = second.submit({"source": QUICK, "label": "after"})
            assert next_id == "job-10"
            assert wait_terminal(second, next_id)["status"] == "done"
        finally:
            second.close()
        # A third replay sees the interrupted verdict directly (it was
        # re-journaled, not re-inferred).
        records, _ = JobJournal(journal_dir).replay()
        assert records["job-9"]["status"] == "interrupted"


# ---------------------------------------------------------------------------
# Full-process crash: SIGKILL the server, restart on the same journal.


def _boot_server(journal_dir, cache_dir):
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                       "..", "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_FAULTS, None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--journal", journal_dir,
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    banner = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    assert match, f"no listen banner: {banner!r}"
    return process, f"http://{match.group(1)}:{match.group(2)}"


class TestCrashRestart:
    def test_sigkill_restart_answers_from_journal(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        cache_dir = str(tmp_path / "cache")

        process, url = _boot_server(journal_dir, cache_dir)
        try:
            done_id = serve_client.submit(url, {"source": QUICK,
                                                "label": "finished"})
            done_record = serve_client.poll(url, done_id, timeout=120)
            assert done_record["status"] == "done"
            # A slow job is still in flight when the server dies.
            doomed_id = serve_client.submit(url, SLOW_MATRIX)
        finally:
            process.kill()              # SIGKILL: no shutdown hooks
            process.wait(timeout=30)
            process.stdout.close()

        process, url = _boot_server(journal_dir, cache_dir)
        try:
            replayed = serve_client.poll(url, done_id, timeout=30)
            assert replayed["status"] == "done"
            # Bit-identical answer straight from the journal.
            assert replayed["rows"] == done_record["rows"]
            assert replayed["replayed"] is True
            doomed = serve_client.poll(url, doomed_id, timeout=30)
            assert doomed["status"] == "interrupted"
            assert "restarted" in doomed["error"]
            # The restarted server is fully serviceable and numbers
            # past the replayed ids.
            fresh_id = serve_client.submit(url, {"source": QUICK,
                                                 "label": "fresh"})
            assert int(fresh_id.split("-")[1]) > \
                int(doomed_id.split("-")[1])
            fresh = serve_client.poll(url, fresh_id, timeout=120)
            assert fresh["status"] == "done"
            assert fresh["rows"][0]["wcet_cycles"] \
                == done_record["rows"][0]["wcet_cycles"]
            stats = serve_client.server_stats(url)
            assert stats["jobs"]["interrupted"] == 1
        finally:
            process.kill()
            process.wait(timeout=30)
            process.stdout.close()


# ---------------------------------------------------------------------------
# Client: backoff polling and abandoning expired jobs.


class _FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestClientBackoff:
    def test_poll_backs_off_exponentially_with_cap(self, monkeypatch):
        clock = _FakeClock()
        monkeypatch.setattr(serve_client.time, "monotonic",
                            clock.monotonic)
        monkeypatch.setattr(serve_client.time, "sleep", clock.sleep)
        monkeypatch.setattr(
            serve_client, "_request",
            lambda url, payload=None, timeout=30.0, method=None:
            {"status": "pending"})
        with pytest.raises(TimeoutError):
            serve_client.poll("http://x", "job-1", timeout=30.0)
        assert clock.sleeps, "poll never slept"
        # Grows from the base interval...
        assert clock.sleeps[0] <= serve_client.POLL_BASE_SECONDS
        assert max(clock.sleeps) > 10 * clock.sleeps[0]
        # ...but never past the cap (jitter only shrinks a wait).
        assert all(wait <= serve_client.POLL_CAP_SECONDS
                   for wait in clock.sleeps)
        # Far fewer requests than fixed-interval polling would make.
        assert len(clock.sleeps) < 30.0 / 0.05

    def test_poll_returns_on_any_terminal_status(self, monkeypatch):
        for status in sorted(TERMINAL_STATUSES):
            monkeypatch.setattr(
                serve_client, "_request",
                lambda url, payload=None, timeout=30.0, method=None,
                status=status: {"status": status})
            record = serve_client.poll("http://x", "job-1", timeout=1)
            assert record["status"] == status

    def test_analyze_cancels_after_client_timeout(self, monkeypatch):
        cancelled = []
        monkeypatch.setattr(serve_client, "submit",
                            lambda url, payload, timeout=30.0: "job-7")

        def never_finishes(url, job_id, timeout=300.0, interval=0.05):
            raise TimeoutError("deadline")

        monkeypatch.setattr(serve_client, "poll", never_finishes)
        monkeypatch.setattr(serve_client, "cancel",
                            lambda url, job_id, timeout=30.0:
                            cancelled.append(job_id))
        with pytest.raises(TimeoutError):
            serve_client.analyze("http://x", {"source": QUICK},
                                 timeout=0.01)
        assert cancelled == ["job-7"]


# ---------------------------------------------------------------------------
# HTTP DELETE end to end (in-process server).


class TestHTTPCancel:
    def test_delete_cancels_over_http(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=1)
        from repro.serve import AnalysisServer
        httpd = AnalysisServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            slow_id = serve_client.submit(url, SLOW_MATRIX)
            blocked_id = serve_client.submit(url, {"source": QUICK})
            record = serve_client.cancel(url, blocked_id)
            assert record["cancel_requested"] is True
            serve_client.cancel(url, slow_id)
            assert serve_client.poll(url, slow_id,
                                     timeout=120)["status"] \
                == "cancelled"
            assert serve_client.poll(url, blocked_id,
                                     timeout=60)["status"] \
                == "cancelled"
            stats = serve_client.server_stats(url)
            assert stats["jobs"]["cancelled"] == 2
        finally:
            httpd.close()
            thread.join(timeout=10)
