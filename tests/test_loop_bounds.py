"""Tests for loop bound analysis (experiment E8's foundations)."""

import pytest

from repro.isa import assemble
from repro.cfg import build_cfg, expand_task
from repro.analysis import analyze_loop_bounds, analyze_values


def bounds_for(source, **kwargs):
    graph = expand_task(build_cfg(assemble(source)))
    values = analyze_values(graph)
    return graph, analyze_loop_bounds(values, **kwargs)


def single_bound(source, **kwargs):
    _graph, bounds = bounds_for(source, **kwargs)
    assert len(bounds) == 1
    return next(iter(bounds.values()))


class TestAffinePatterns:
    def test_count_up_lt(self):
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
            HALT
        """)
        assert bound.max_iterations == 10
        assert bound.method == "affine"

    def test_count_up_le(self):
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #10
            BLE loop
            HALT
        """)
        assert bound.max_iterations == 11

    def test_count_down_gt(self):
        bound = single_bound("""
        main:
            MOVI R0, #10
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """)
        assert bound.max_iterations == 10

    def test_count_down_ge(self):
        bound = single_bound("""
        main:
            MOVI R0, #10
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGE loop
            HALT
        """)
        assert bound.max_iterations == 11

    def test_step_two(self):
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #2
            CMPI R0, #10
            BLT loop
            HALT
        """)
        assert bound.max_iterations == 5

    def test_ne_exit(self):
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #7
            BNE loop
            HALT
        """)
        assert bound.max_iterations == 7

    def test_test_before_increment(self):
        # while (i < 10) { ...; i++ } compiled with the compare first.
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            CMPI R0, #10
            BGE done
            ADDI R0, R0, #1
            B loop
        done:
            HALT
        """)
        # Header executes 11 times (10 full iterations + failing test).
        assert bound.max_iterations == 11

    def test_register_limit(self):
        bound = single_bound("""
        main:
            MOVI R5, #6
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMP R0, R5
            BLT loop
            HALT
        """)
        assert bound.max_iterations == 6

    def test_interval_init_uses_worst_case(self):
        # Counter starts in [0, 3] -> at most 10 iterations from 0.
        source = """
        main:
            CMPI R1, #0
            BLT neg
            MOVI R0, #3
            B go
        neg:
            MOVI R0, #0
        go:
        loop:
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
            HALT
        """
        _graph, bounds = bounds_for(source)
        (bound,) = bounds.values()
        assert bound.max_iterations == 10


class TestNestedLoops:
    def test_rectangular_nest(self):
        source = """
        main:
            MOVI R0, #0
        outer:
            MOVI R1, #0
        inner:
            ADDI R1, R1, #1
            CMPI R1, #4
            BLT inner
            ADDI R0, R0, #1
            CMPI R0, #3
            BLT outer
            HALT
        """
        graph, bounds = bounds_for(source)
        values = sorted(b.max_iterations for b in bounds.values())
        assert values == [3, 4]

    def test_triangular_nest_uses_outer_interval(self):
        # for i in 0..5: for j in 0..i  -> inner bound must cover i=5.
        source = """
        main:
            MOVI R0, #0
        outer:
            MOVI R1, #0
        inner:
            ADDI R1, R1, #1
            CMP R1, R0
            BLE inner
            ADDI R0, R0, #1
            CMPI R0, #5
            BLT outer
            HALT
        """
        graph, bounds = bounds_for(source)
        per_loop = {b.max_iterations for b in bounds.values()}
        # Outer: 5 iterations. Inner: j tested against i in [0,4]
        assert 5 in per_loop
        inner = max(per_loop)
        assert inner >= 5    # sound
        assert inner <= 7    # and not wildly imprecise


class TestUnrollFallback:
    def test_conditional_increment_loop(self):
        # Counter updated twice per iteration -> not "simple"; unrolling
        # still bounds it.
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            ADDI R0, R0, #1
            CMPI R0, #10
            BLT loop
            HALT
        """)
        assert bound.method == "unroll"
        assert bound.max_iterations == 5

    def test_shifting_counter(self):
        # Counter doubles each iteration: not affine.
        bound = single_bound("""
        main:
            MOVI R0, #1
        loop:
            SHLI R0, R0, #1
            CMPI R0, #64
            BLT loop
            HALT
        """)
        assert bound.method == "unroll"
        assert bound.max_iterations == 6

    def test_unbounded_loop_reports_none(self):
        bound = single_bound("""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #0
            CMPI R0, #10
            BLT loop
            HALT
        """, unroll_limit=50)
        assert bound.max_iterations is None
        assert bound.method == "none"

    def test_input_dependent_exit_is_unbounded(self):
        # Exit depends on an unknown input register.
        bound = single_bound("""
        main:
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """, unroll_limit=50)
        # R0 is unknown at entry: cannot bound.
        assert bound.max_iterations is None


class TestAnnotations:
    def test_manual_bound_overrides(self):
        source = """
        main:
        loop:
            SUBI R0, R0, #1
            CMPI R0, #0
            BGT loop
            HALT
        """
        graph, bounds = bounds_for(source)
        program = assemble(source)
        header = program.symbols["loop"]
        graph2 = expand_task(build_cfg(assemble(source)))
        values = analyze_values(graph2)
        bounds = analyze_loop_bounds(values, manual_bounds={header: 25})
        (bound,) = bounds.values()
        assert bound.max_iterations == 25
        assert bound.method == "annotation"


class TestSoundnessAgainstExecution:
    @pytest.mark.parametrize("n", [1, 2, 7, 10, 33])
    def test_bound_covers_actual_iterations(self, n):
        source = f"""
        main:
            MOVI R0, #0
        loop:
            ADDI R0, R0, #1
            CMPI R0, #{n}
            BLT loop
            HALT
        """
        bound = single_bound(source)
        # Concrete header executions = n (do-while shape).
        assert bound.max_iterations is not None
        assert bound.max_iterations >= n
        assert bound.max_iterations == n  # exact for this family
