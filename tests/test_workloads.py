"""Whole-suite soundness tests: for every workload the verified WCET
and stack bounds must cover every simulated run (S1/S2 at scale)."""

import pytest

from repro.stack import analyze_stack
from repro.workloads import (WORKLOADS, analyze_workload, get_workload,
                             observed_worst_case, simulate_workload,
                             workload_names)

ALL_NAMES = workload_names()


@pytest.fixture(scope="module")
def analyzed():
    """Compile + analyze every workload once per test module."""
    cache = {}
    for name in ALL_NAMES:
        workload = get_workload(name)
        program = workload.compile()
        cache[name] = (workload, program,
                       analyze_workload(workload))
    return cache


class TestCorpusBasics:
    def test_registry_is_populated(self):
        assert len(WORKLOADS) >= 12

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload("nonexistent")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_compiles_and_halts(self, name):
        workload = get_workload(name)
        result = simulate_workload(workload)
        assert result.halted


class TestFunctionalCorrectness:
    def test_fibcall_result(self):
        workload = get_workload("fibcall")
        program = workload.compile()
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbol_address("g_result")] \
            == 832040    # fib(30)

    def test_insertsort_sorts(self):
        workload = get_workload("insertsort")
        program = workload.compile()
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        base = program.symbol_address("g_a")
        values = [simulator.memory[base + 4 * i] for i in range(10)]
        assert values == sorted(values)

    def test_bsort_sorts_random_inputs(self):
        import random
        workload = get_workload("bsort")
        program = workload.compile()
        rng = random.Random(3)
        data = [rng.randint(0, 999) for _ in range(12)]
        from repro.sim import Simulator
        simulator = Simulator(program)
        base = program.symbol_address("g_a")
        for i, value in enumerate(data):
            simulator.memory[base + 4 * i] = value
        simulator.run()
        values = [simulator.memory[base + 4 * i] for i in range(12)]
        assert values == sorted(data)

    def test_matmult_result(self):
        workload = get_workload("matmult")
        program = workload.compile()
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        a = list(range(1, 17))
        b = list(range(16, 0, -1))
        expected = [
            sum(a[i * 4 + k] * b[k * 4 + j] for k in range(4))
            for i in range(4) for j in range(4)]
        base = program.symbol_address("g_mc")
        got = [simulator.memory[base + 4 * i] for i in range(16)]
        assert got == expected

    def test_binary_search_finds(self):
        workload = get_workload("bs")
        program = workload.compile()
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbol_address("g_found")] == 7

    def test_crc_is_deterministic_and_bytewide(self):
        workload = get_workload("crc")
        program = workload.compile()
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        value = simulator.memory[program.symbol_address("g_crc")]
        assert 0 <= value <= 0xFF


class TestWCETSoundnessAcrossCorpus:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_wcet_covers_observed_worst_case(self, name, analyzed):
        workload, program, result = analyzed[name]
        observed_cycles, _ = observed_worst_case(
            workload, program, runs=10)
        assert result.wcet_cycles >= observed_cycles, (
            f"{name}: bound {result.wcet_cycles} < observed "
            f"{observed_cycles}")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_wcet_is_not_absurdly_loose(self, name, analyzed):
        workload, program, result = analyzed[name]
        if workload.manual_bounds_in_order \
                and len(workload.manual_bounds_in_order) > 1:
            pytest.skip("bound tightness is set by the annotations, "
                        "not the analysis")
        observed_cycles, _ = observed_worst_case(
            workload, program, runs=10)
        # Generous cap: catches catastrophic precision regressions
        # while tolerating genuinely data-dependent kernels.
        assert result.wcet_cycles <= observed_cycles * 6, (
            f"{name}: bound {result.wcet_cycles} vs observed "
            f"{observed_cycles}")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_all_loops_bounded(self, name, analyzed):
        _workload, _program, result = analyzed[name]
        assert not result.unbounded_loops()


class TestStackSoundnessAcrossCorpus:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_stack_bound_covers_observed(self, name, analyzed):
        workload, program, _result = analyzed[name]
        stack = analyze_stack(program)
        _, observed_stack = observed_worst_case(workload, program,
                                                runs=5)
        assert stack.bound >= observed_stack
        assert not stack.overflows

    def test_calltree_stack_is_exact(self):
        workload = get_workload("calltree")
        program = workload.compile()
        stack = analyze_stack(program)
        execution = simulate_workload(workload, program)
        assert stack.bound == execution.max_stack_usage


class TestTraceLevelVerification:
    """Corpus-wide S1/S2/S4/S5 via the repro.verify checker, with full
    cache traces."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_verify_bounds_on_traced_runs(self, name, analyzed):
        from repro.stack import analyze_stack
        from repro.verify import BoundChecker, VerificationReport
        from repro.sim import Simulator
        import random

        workload, program, wcet = analyzed[name]
        stack = analyze_stack(program)
        checker = BoundChecker(program, wcet, stack)
        report = VerificationReport()
        rng = random.Random(2024)

        from repro.workloads import random_inputs
        for run in range(4):
            simulator = Simulator(program, config=wcet.config,
                                  collect_trace=True)
            if run and workload.input_arrays:
                overrides = random_inputs(workload, rng)
                for arr, values in overrides.items():
                    base = program.symbol_address(f"g_{arr}")
                    for offset, value in enumerate(values):
                        simulator.memory[base + 4 * offset] = \
                            value & 0xFFFFFFFF
            result = simulator.run(max_steps=2_000_000)
            checker.check_run(result, report)
        assert report.ok, (name, [str(v) for v in report.violations])
