"""Phase-DAG scheduler tests: construction, dedup, determinism,
failure handling, and eviction robustness.

The batch engine schedules parallel sweeps as a deduplicated DAG of
phase tasks (:mod:`repro.batch.dag` + :mod:`repro.batch.scheduler`).
These tests pin the properties the ISSUE demands: structural dedup
counts, cycle rejection, deterministic ready-queue ordering,
byte-identical rows at every worker count (modulo timing fields),
error rows instead of crashes when tasks or whole workers die, and
recomputation (not failure) when a cached artifact vanishes under a
bounded store.
"""

import copy
import glob
import os

import pytest

from repro import faults
from repro.batch import (ArtifactCache, DAGCycleError, JobSpec, TaskDAG,
                         build_sweep_dag, clear_process_caches,
                         compare_rows, expand_matrix, load_golden,
                         run_sweep)
from repro.batch import scheduler as dag_scheduler
from repro.wcet.ait import PHASES

SMALL_MATRIX = "fibcall,bs:full,vivu:additive,krisc5"
#: Includes janne, whose discover-then-annotate prefix produces a
#: non-empty manual-bound mapping (bs's discovery finds every loop
#: already bounded), so the annotate task chain is really exercised.
ANNOTATED_MATRIX = "fibcall,bs,janne:full,klimited:additive,krisc5"
GOLDEN = os.path.join(os.path.dirname(__file__), "golden_bounds.json")


def strip_timing(rows):
    stripped = []
    for row in copy.deepcopy(rows):
        row.pop("wall_seconds", None)
        row.pop("phase_seconds", None)
        row.pop("compile_seconds", None)
        stripped.append(row)
    return stripped


# -- DAG construction ------------------------------------------------------------


class TestDAGConstruction:
    def test_dedup_counts_small_matrix(self):
        # 8 jobs x 7 phases + bs's 2 discovery prefixes (cfg/value/
        # loopbounds + annotate, one per policy) = 72 references; the
        # models share every pre-pipeline artifact and bs/full shares
        # its cfg+value with its own discovery prefix -> 38 tasks.
        sweep = build_sweep_dag(expand_matrix(SMALL_MATRIX))
        assert sweep.stats() == {"phase_refs": 72, "unique_tasks": 38,
                                 "deduped_tasks": 34}
        assert not sweep.build_errors

    def test_models_share_all_pre_pipeline_tasks(self):
        jobs = expand_matrix("fibcall:full:additive,krisc5")
        sweep = build_sweep_dag(jobs)
        additive, krisc5 = sweep.job_phase_nodes
        for phase in ("cfg", "value", "loopbounds", "icache", "dcache"):
            assert additive[phase] is krisc5[phase]
        for phase in ("pipeline", "path"):
            assert additive[phase] is not krisc5[phase]

    def test_policies_share_only_the_program(self):
        # Different context policies expand different graphs: no phase
        # tasks in common (the compiled Program is shared worker-side).
        jobs = expand_matrix("fibcall:full,vivu:additive")
        sweep = build_sweep_dag(jobs)
        full, vivu = sweep.job_phase_nodes
        assert all(full[phase] is not vivu[phase] for phase in PHASES)

    def test_annotated_workload_has_discovery_prefix(self):
        sweep = build_sweep_dag(expand_matrix("janne:vivu:additive"))
        labels = {node.template for node in sweep.dag.nodes}
        assert {"discover:cfg", "discover:value",
                "discover:loopbounds", "annotate"} <= labels
        loopbounds = sweep.job_phase_nodes[0]["loopbounds"]
        assert "annotate" in {dep.template for dep in loopbounds.deps}

    def test_row_per_job_never_deduped(self):
        jobs = expand_matrix(SMALL_MATRIX)
        sweep = build_sweep_dag(jobs)
        rows = [node for node in sweep.dag.nodes if node.kind == "row"]
        assert len(rows) == len(jobs)

    def test_unplannable_job_becomes_build_error(self):
        jobs = [JobSpec("no-such-workload", "full", "additive"),
                JobSpec("fibcall", "full", "additive"),
                JobSpec("fibcall", "full", "warp9")]
        sweep = build_sweep_dag(jobs)
        assert set(sweep.build_errors) == {0, 2}
        assert sweep.row_nodes[0] is None
        assert sweep.row_nodes[1] is not None
        assert "warp9" in sweep.build_errors[2]

    def test_no_cache_dag_degrades_to_job_nodes(self):
        jobs = expand_matrix(SMALL_MATRIX)
        sweep = build_sweep_dag(jobs, use_cache=False)
        assert all(node.kind == "job" for node in sweep.dag.nodes)
        assert len(sweep.dag.nodes) == len(jobs)
        assert sweep.stats()["phase_refs"] == 0

    def test_cycle_rejection(self):
        dag = TaskDAG()
        spec = JobSpec("fibcall", "full", "additive")
        a = dag.add_node(("a",), "a", "phase", spec, "a")
        b = dag.add_node(("b",), "b", "phase", spec, "b", deps=[a])
        dag.add_edge(b, a)            # back edge: a <-> b
        with pytest.raises(DAGCycleError):
            dag.validate()
        with pytest.raises(DAGCycleError):
            dag.start()

    def test_sweep_dag_is_acyclic(self):
        build_sweep_dag(expand_matrix(ANNOTATED_MATRIX)).dag.validate()

    def test_ready_queue_orders_by_build_index(self):
        dag = TaskDAG()
        spec = JobSpec("fibcall", "full", "additive")
        roots = [dag.add_node((name,), name, "phase", spec, name)
                 for name in ("r0", "r1", "r2")]
        child = dag.add_node(("c",), "c", "phase", spec, "c",
                             deps=roots)
        ready = dag.start()
        assert [node.label for node in ready] == ["r0", "r1", "r2"]
        # Completing out of order still releases the child exactly once
        # all dependencies are done.
        assert dag.complete(roots[2]) == []
        assert dag.complete(roots[0]) == []
        assert dag.complete(roots[1]) == [child]

    def test_failure_cascades_to_transitive_dependents(self):
        dag = TaskDAG()
        spec = JobSpec("fibcall", "full", "additive")
        a = dag.add_node(("a",), "a", "phase", spec, "a")
        b = dag.add_node(("b",), "b", "phase", spec, "b", deps=[a])
        c = dag.add_node(("c",), "c", "row", spec, "row", deps=[b])
        unaffected = dag.add_node(("d",), "d", "phase", spec, "d")
        dag.start()
        failed = dag.fail(a, "boom")
        assert {node.label for node in failed} == {"a", "b", "c"}
        assert unaffected.state != "failed"
        assert "boom" in c.error


# -- Determinism across worker counts --------------------------------------------


class TestSchedulerDeterminism:
    def test_rows_identical_at_every_worker_count(self):
        golden = load_golden(GOLDEN)
        jobs = expand_matrix(ANNOTATED_MATRIX)
        rows_by_workers = {}
        for workers in (1, 2, 4, 8):
            clear_process_caches()
            result = run_sweep(jobs, parallel=workers)
            assert result.errors == []
            assert compare_rows(result.rows, golden) == []
            rows_by_workers[workers] = strip_timing(result.rows)
        reference = rows_by_workers[1]
        for workers in (2, 4, 8):
            assert rows_by_workers[workers] == reference, \
                f"rows diverged at {workers} workers"

    def test_scheduler_stats_account_for_every_task(self):
        jobs = expand_matrix(SMALL_MATRIX)
        expected = build_sweep_dag(jobs).stats()
        clear_process_caches()
        result = run_sweep(jobs, parallel=2)
        stats = result.scheduler
        assert stats["workers"] == 2
        for key, value in expected.items():
            assert stats[key] == value
        assert stats["computed_tasks"] + stats["cache_served_tasks"] \
            == stats["unique_tasks"]
        assert stats["deduped_tasks"] > 0
        assert 0 < sum(stats["worker_busy_fraction"].values())

    def test_sequential_path_records_no_scheduler_stats(self):
        result = run_sweep(expand_matrix("fibcall:full:additive"),
                           parallel=1)
        assert result.scheduler is None

    def test_warm_shared_cache_dir_serves_everything(self, tmp_path):
        jobs = expand_matrix(SMALL_MATRIX)
        clear_process_caches()
        run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        clear_process_caches()
        warm = run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        assert warm.hit_ratio() == 1.0
        assert warm.scheduler["computed_tasks"] == 0


# -- Failure handling ------------------------------------------------------------


class TestFailureHandling:
    def test_failing_job_yields_error_row_not_crash(self, monkeypatch):
        from repro.workloads import suite
        broken = suite.Workload(name="broken-kernel",
                                description="uncompilable", category="x",
                                source="int main( {")
        monkeypatch.setitem(suite.WORKLOADS, broken.name, broken)
        jobs = [JobSpec(broken.name, "full", "additive"),
                JobSpec("fibcall", "full", "additive")]
        clear_process_caches()
        result = run_sweep(jobs, parallel=2)
        assert "error" in result.rows[0]
        assert result.rows[1]["wcet_cycles"] == 418
        assert len(result.errors) == 1
        assert "broken-kernel" in result.errors[0]

    def test_task_exceptions_travel_as_error_payloads(self):
        # Tasks never raise across the result pipe: an exception class
        # that does not survive a pickle round-trip would otherwise
        # break the *pool* (parent-side unpickling fails and every
        # in-flight job dies), not just the task.
        outcome = dag_scheduler._phase_task(
            (JobSpec("fibcall", "full", "additive"), "no-such-phase",
             None, None, None, None))
        assert "KeyError" in outcome["error"]
        assert "row" not in outcome

    def test_lang_errors_survive_pickle_round_trip(self):
        import pickle
        from repro.lang.lexer import LexerError
        from repro.lang.parser import ParseError
        for cls in (ParseError, LexerError):
            err = pickle.loads(pickle.dumps(cls("boom", 3)))
            assert err.line == 3
            assert str(err) == "line 3: boom"

    def test_worker_death_degrades_to_complete_rows(self, monkeypatch):
        # Every worker task kills its worker (rate 1.0): the scheduler
        # rebuilds the pool up to its budget, then degrades to
        # in-process execution — every row still completes with the
        # golden bound instead of becoming an error row.
        if dag_scheduler._pool_context() is None:
            pytest.skip("needs fork start method")
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_kill:1.0")
        faults.reset()
        try:
            jobs = expand_matrix("fibcall:full:additive,krisc5")
            clear_process_caches()
            result = run_sweep(jobs, parallel=2, max_pool_rebuilds=1)
        finally:
            faults.reset()
        assert result.errors == []
        assert compare_rows(result.rows, load_golden(GOLDEN)) == []
        stats = result.scheduler
        assert stats["pool_rebuilds"] == 1
        assert stats["degraded_tasks"] > 0
        assert stats["retries"] > 0

    def test_error_past_retry_budget_reports_attempt_count(
            self, monkeypatch):
        # A deterministic task error burns the whole retry budget and
        # the error row says how often the task was tried.
        from repro.workloads import suite
        broken = suite.Workload(name="broken-kernel",
                                description="uncompilable", category="x",
                                source="int main( {")
        monkeypatch.setitem(suite.WORKLOADS, broken.name, broken)
        jobs = [JobSpec(broken.name, "full", "additive")]
        clear_process_caches()
        result = run_sweep(jobs, parallel=2, max_task_retries=1)
        assert len(result.errors) == 1
        assert "task failed 2 times" in result.errors[0]
        assert result.scheduler["retries"] == 1


# -- Eviction robustness ---------------------------------------------------------


class TestEvictionRobustness:
    def test_vanished_objects_are_recomputed(self, tmp_path):
        jobs = expand_matrix(SMALL_MATRIX)
        golden = load_golden(GOLDEN)
        clear_process_caches()
        run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        for path in glob.glob(str(tmp_path / "objects" / "*" / "*.pkl")):
            os.unlink(path)           # simulates eviction by a peer
        clear_process_caches()
        result = run_sweep(jobs, parallel=2, cache_dir=str(tmp_path))
        assert result.errors == []
        assert compare_rows(result.rows, golden) == []

    def test_sweep_survives_constant_eviction(self, tmp_path):
        # A store far too small for even one workload's artifacts:
        # workers continuously evict under each other and must
        # recompute transitively instead of raising.
        jobs = expand_matrix(SMALL_MATRIX)
        golden = load_golden(GOLDEN)
        clear_process_caches()
        result = run_sweep(jobs, parallel=2, cache_dir=str(tmp_path),
                           cache_limit_mb=0.01)
        assert result.errors == []
        assert compare_rows(result.rows, golden) == []

    def test_store_never_evicts_just_written_object(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), salt="s", limit_bytes=1)
        key = cache.key("m")
        cache.store(key, list(range(1000)))
        assert os.path.exists(cache._object_path(key))

    def test_lookup_freshens_mtime_for_lru_eviction(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), salt="s")
        key = cache.key("m")
        cache.store(key, "value")
        path = cache._object_path(key)
        os.utime(path, (1, 1))
        fresh = ArtifactCache(str(tmp_path), salt="s")  # cold memo
        hit, _ = fresh.lookup(key)
        assert hit
        assert os.stat(path).st_mtime > 1
