"""Multi-task response-time analysis with CRPD: task-set model,
UCB/ECB analysis, the RTA recurrence on the shared fixpoint kernel,
the preemptive-simulation oracle (S7/S8), and schedulability sweeps.
"""

import json
import os
from dataclasses import replace

import pytest

from repro.batch.cachestore import ArtifactCache
from repro.cache.config import CacheConfig, MachineConfig
from repro.isa import DATA_BASE, assemble
from repro.rta import (CacheUCB, ORDERINGS, RTTask, TaskSet, analyze_taskset,
                       can_preempt, crpd_extra_misses, extra_miss_bound,
                       footprint_of, full_refill_cycles, load_taskset,
                       parse_taskset, response_times, solve_recurrence,
                       verify_taskset)
from repro.rta.sweep import (GEOMETRIES, compare_with_golden, config_for,
                             load_golden, parse_geometry, rows_to_golden,
                             save_golden, sweep_taskset)
from repro.rta.ucb import TOP
from repro.sim import Simulator, run_program
from repro.verify.checker import (VerificationReport, check_preempted_run,
                                  verify_preemption)
from repro.wcet import analyze_wcet
from repro.workloads.tasksets import EXAMPLE_TASKSETS, example_tasksets

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
TASKSETS_DIR = os.path.join(os.path.dirname(TESTS_DIR), "tasksets")
GOLDEN_PATH = os.path.join(TESTS_DIR, "golden_rta.json")


# ---------------------------------------------------------------------------
# Task-set model and JSON parsing.


class TestTaskSetModel:
    def test_defaults_and_effective_attributes(self):
        task = RTTask(name="t", workload="fibcall", priority=2,
                      period=1000)
        assert task.effective_threshold == 2
        assert task.effective_deadline == 1000
        explicit = RTTask(name="t", workload="fibcall", priority=2,
                          period=1000, threshold=5, deadline=800)
        assert explicit.effective_threshold == 5
        assert explicit.effective_deadline == 800

    def test_invalid_tasks_rejected(self):
        with pytest.raises(ValueError):
            RTTask(name="", workload="w", priority=1, period=10)
        with pytest.raises(ValueError):
            RTTask(name="t", workload="w", priority=1, period=0)
        with pytest.raises(ValueError):
            RTTask(name="t", workload="w", priority=1, period=10,
                   jitter=-1)
        with pytest.raises(ValueError):
            RTTask(name="t", workload="w", priority=3, period=10,
                   threshold=2)
        with pytest.raises(ValueError):
            RTTask(name="t", workload="w", priority=1, period=10,
                   deadline=0)

    def test_invalid_task_sets_rejected(self):
        task = RTTask(name="t", workload="w", priority=1, period=10)
        with pytest.raises(ValueError):
            TaskSet(name="s", tasks=())
        with pytest.raises(ValueError):
            TaskSet(name="s", tasks=(task, task))
        with pytest.raises(ValueError):
            TaskSet(name="s", tasks=(task,), context_switch_cycles=-1)

    def test_threshold_rule_matches_stack_analysis(self):
        lo = RTTask(name="lo", workload="w", priority=1, period=10,
                    threshold=3)
        mid = RTTask(name="mid", workload="w", priority=2, period=10)
        hi = RTTask(name="hi", workload="w", priority=4, period=10)
        assert not can_preempt(mid, lo)      # 2 <= threshold 3
        assert can_preempt(hi, lo)           # 4 > 3
        assert not can_preempt(lo, hi)
        taskset = TaskSet(name="s", tasks=(lo, mid, hi))
        assert [t.name for t in taskset.preemptors_of(lo)] == ["hi"]
        assert [t.name for t in taskset.preemptors_of(mid)] == ["hi"]
        assert taskset.preemptors_of(hi) == []

    def test_reordered_orderings(self):
        taskset = TaskSet(name="s", tasks=(
            RTTask(name="slowest", workload="w", priority=3,
                   period=900),
            RTTask(name="fastest", workload="w", priority=1,
                   period=100),
        ))
        assert taskset.reordered("given") is taskset
        rm = taskset.reordered("rate_monotonic")
        assert rm.task("fastest").priority > rm.task("slowest").priority
        rev = taskset.reordered("reverse")
        assert rev.task("fastest").priority > rev.task("slowest").priority
        with pytest.raises(ValueError):
            taskset.reordered("alphabetical")

    def test_reordering_resets_thresholds(self):
        taskset = TaskSet(name="s", tasks=(
            RTTask(name="a", workload="w", priority=2, threshold=9,
                   period=100),
            RTTask(name="b", workload="w", priority=1, period=300),
        ))
        rm = taskset.reordered("rate_monotonic")
        assert rm.task("a").threshold is None

    def test_parse_taskset_roundtrip(self):
        payload = {
            "name": "demo",
            "context_switch_cycles": 12,
            "tasks": [
                {"name": "a", "workload": "fibcall", "priority": 2,
                 "period": 5000, "jitter": 10},
                {"name": "b", "workload": "bs", "priority": 1,
                 "period": 9000, "threshold": 2, "deadline": 8000},
            ],
        }
        taskset = parse_taskset(payload)
        assert taskset.name == "demo"
        assert taskset.context_switch_cycles == 12
        assert taskset.task("a").jitter == 10
        assert taskset.task("b").threshold == 2
        assert taskset.task("b").effective_deadline == 8000

    def test_parse_taskset_rejects_malformed_payloads(self):
        good_task = {"name": "a", "workload": "w", "priority": 1,
                     "period": 10}
        with pytest.raises(ValueError):
            parse_taskset([])
        with pytest.raises(ValueError):
            parse_taskset({"tasks": [good_task]})
        with pytest.raises(ValueError):
            parse_taskset({"name": "s", "tasks": []})
        with pytest.raises(ValueError):
            parse_taskset({"name": "s", "tasks": ["nope"]})
        with pytest.raises(ValueError):
            parse_taskset({"name": "s",
                           "tasks": [{**good_task, "wcet": 5}]})
        with pytest.raises(ValueError):
            parse_taskset({"name": "s",
                           "tasks": [{"name": "a", "priority": 1,
                                      "period": 10}]})

    def test_load_taskset_fixture_matches_python_example(self):
        # tasksets/ecu_mix.json documents the JSON shape; it must stay
        # in sync with the canonical Python definition.
        loaded = load_taskset(os.path.join(TASKSETS_DIR, "ecu_mix.json"))
        assert loaded == EXAMPLE_TASKSETS["ecu_mix"]

    def test_load_taskset_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_taskset(str(path))


# ---------------------------------------------------------------------------
# UCB/ECB analysis against hand-computed sets.
#
# Default cache geometry: 16 sets x 2 ways x 16-byte lines, so the
# data word at DATA_BASE=0x8000 is line 2048 (set 0), and 0x8010 is
# line 2049 (set 1).

VICTIM_RELOAD = """
main:
    LDA R1, buf
    LDR R2, [R1]
    LDR R3, [R1]
    HALT
.data
buf: .word 7
"""

PREEMPTOR_SAME_SET = """
main:
    LDA R1, buf
    LDR R2, [R1]
    HALT
.data
buf: .word 1
"""

PREEMPTOR_OTHER_SET = """
main:
    LDA R1, buf
    LDR R2, [R1]
    HALT
.data
pad0: .word 0
pad1: .word 0
pad2: .word 0
pad3: .word 0
buf: .word 1
"""


def footprint(source, config=None):
    program = assemble(source)
    return program, footprint_of(analyze_wcet(program, config=config))


class TestUCBAnalysis:
    def test_dcache_ucb_and_ecb_hand_computed(self):
        _, fp = footprint(VICTIM_RELOAD)
        line = DATA_BASE // 16                      # 2048
        # ECB: the one data line the task touches, known precisely.
        assert fp.dcache.ecb == frozenset({line})
        assert not fp.dcache.ecb_unknown
        # UCB points: before the first load nothing useful is cached;
        # between the loads the line is cached AND reused; after the
        # second load nothing is live any more.
        assert set(fp.dcache.points) == {frozenset(),
                                         frozenset({line})}

    def test_icache_ecb_covers_exactly_the_fetched_lines(self):
        program, fp = footprint(VICTIM_RELOAD)
        text = program.text
        expected = {address // 16
                    for address in range(text.base, text.end, 4)}
        assert fp.icache.ecb == frozenset(expected)
        assert not fp.icache.ecb_unknown

    def test_same_set_preemptor_gets_budget_one(self):
        _, victim = footprint(VICTIM_RELOAD)
        _, preemptor = footprint(PREEMPTOR_SAME_SET)
        # Preemptor data line 2048 lands in set 0, where the victim
        # keeps exactly one useful block.
        assert extra_miss_bound(victim.dcache, preemptor.dcache) == 1

    def test_disjoint_set_preemptor_gets_budget_zero(self):
        _, victim = footprint(VICTIM_RELOAD)
        _, preemptor = footprint(PREEMPTOR_OTHER_SET)
        # Preemptor data (0x8010, set 1) never touches the victim's
        # useful set 0: no preemption can cost the victim a data miss.
        assert preemptor.dcache.ecb == frozenset({DATA_BASE // 16 + 1})
        assert extra_miss_bound(victim.dcache, preemptor.dcache) == 0


class TestExtraMissBound:
    CFG = CacheConfig(num_sets=4, associativity=2, line_size=16)

    def ucb(self, points=(), ecb=(), unknown=False, config=None):
        return CacheUCB(config=config or self.CFG,
                        points=tuple(points), ecb=frozenset(ecb),
                        ecb_unknown=unknown)

    def test_per_set_clip_at_associativity(self):
        # Three useful lines all in set 0 of a 2-way cache: one
        # preemption can only age out two of them.
        victim = self.ucb(points=[frozenset({0, 4, 8})])
        preemptor = self.ucb(ecb={0})
        assert extra_miss_bound(victim, preemptor) == 2

    def test_untouched_sets_cost_nothing(self):
        victim = self.ucb(points=[frozenset({0, 4, 8})])
        preemptor = self.ucb(ecb={1})               # set 1 only
        assert extra_miss_bound(victim, preemptor) == 0
        assert extra_miss_bound(victim, self.ucb(ecb=())) == 0

    def test_top_point_counts_touched_sets_times_ways(self):
        victim = self.ucb(points=[TOP])
        preemptor = self.ucb(ecb={0, 1})
        assert extra_miss_bound(victim, preemptor) == 2 * 2

    def test_unknown_ecb_touches_every_set(self):
        victim = self.ucb(points=[TOP])
        preemptor = self.ucb(unknown=True)
        assert extra_miss_bound(victim, preemptor) == 4 * 2
        # ... but a precise victim still clips per set.
        precise = self.ucb(points=[frozenset({0, 1})])
        assert extra_miss_bound(precise, preemptor) == 2

    def test_maximum_over_points(self):
        victim = self.ucb(points=[frozenset(), frozenset({0}),
                                  frozenset({0, 4})])
        preemptor = self.ucb(ecb={0})
        assert extra_miss_bound(victim, preemptor) == 2

    def test_geometry_mismatch_rejected(self):
        other = CacheConfig(num_sets=8, associativity=2, line_size=16)
        with pytest.raises(ValueError, match="geometries"):
            extra_miss_bound(self.ucb(), self.ucb(config=other))

    def test_full_refill_reference(self):
        assert full_refill_cycles(self.CFG, self.CFG) == \
            2 * (10 * 4 * 2)


# ---------------------------------------------------------------------------
# The RTA recurrence: convergence, divergence, closed-form checks.


def two_tasks(cs=0, jitter=0, lo_threshold=None, hi_period=10,
              lo_period=100):
    return TaskSet(name="synthetic", context_switch_cycles=cs, tasks=(
        RTTask(name="hi", workload="w", priority=2, period=hi_period,
               jitter=jitter),
        RTTask(name="lo", workload="w", priority=1, period=lo_period,
               threshold=lo_threshold),
    ))


WCETS = {"hi": 2, "lo": 4}
CRPD = {("lo", "hi"): 1}


def response_of(responses, name):
    (match,) = [r for r in responses if r.name == name]
    return match


class TestSolveRecurrence:
    def test_constant_recurrence_converges_immediately(self):
        value, iterations = solve_recurrence(1, lambda r: 5, limit=10)
        assert value == 5
        assert iterations >= 1

    def test_divergent_recurrence_saturates_not_loops(self):
        value, iterations = solve_recurrence(1, lambda r: r + 1,
                                             limit=100)
        assert value is None
        assert iterations <= 110

    def test_start_beyond_limit_is_unschedulable(self):
        value, _ = solve_recurrence(200, lambda r: r, limit=100)
        assert value is None


class TestResponseTimes:
    def test_closed_form_with_crpd(self):
        # R_lo = 4 + ceil(R/10) * (2 + 1) -> 7.
        responses = response_times(two_tasks(), WCETS, CRPD)
        assert response_of(responses, "hi").response == 2
        assert response_of(responses, "lo").response == 7
        assert response_of(responses, "lo").crpd == {"hi": 1}
        assert response_of(responses, "lo").naive_response is None

    def test_jitter_adds_arrivals(self):
        # R_lo = 4 + ceil((R+5)/10) * 3 -> 10 (two arrivals).
        responses = response_times(two_tasks(jitter=5), WCETS, CRPD)
        assert response_of(responses, "lo").response == 10

    def test_context_switch_charged_per_arrival(self):
        # R_lo = 4 + ceil(R/10) * (2 + 1 + 2) -> 9.
        responses = response_times(two_tasks(cs=2), WCETS, CRPD)
        assert response_of(responses, "lo").response == 9

    def test_naive_reference_solved_alongside(self):
        # Naive gamma 5: R_lo = 4 + ceil(R/10) * 7 -> 18.
        responses = response_times(two_tasks(), WCETS, CRPD,
                                   naive_crpd=5)
        lo = response_of(responses, "lo")
        assert lo.response == 7
        assert lo.naive_response == 18
        assert lo.naive_iterations >= 1

    def test_threshold_blocks_preemption_entirely(self):
        responses = response_times(two_tasks(lo_threshold=2), WCETS,
                                   CRPD)
        lo = response_of(responses, "lo")
        assert lo.response == lo.wcet_cycles == 4
        assert lo.crpd == {}

    def test_overutilization_diverges_to_unschedulable(self):
        # hi: C=2 every 3; lo: C=4 every 5 -> utilization > 1.
        taskset = two_tasks(hi_period=3, lo_period=5)
        responses = response_times(taskset, WCETS, CRPD)
        lo = response_of(responses, "lo")
        assert lo.response is None
        assert not lo.schedulable
        assert lo.iterations <= 50          # saturated, not spinning


# ---------------------------------------------------------------------------
# Preemptive simulation: the instruction-boundary hook itself.

STRAIGHT_LINE = """
main:
    LDA R1, buf
    MOVI R0, #5
    STR R0, [R1]
    LDR R2, [R1]
    ADD R0, R0, R2
    MUL R0, R0, R0
    HALT
.data
buf: .word 0
"""

EMPTY_TASK = """
main:
    HALT
"""


class TestPreemptiveSimulator:
    @pytest.mark.parametrize("model", ["additive", "krisc5"])
    def test_empty_preemptor_differential(self, model):
        # With an (almost) empty preemptor the preempted run must be
        # the solo run plus exactly the preemptor's own cycles: same
        # architectural results, same task-attributed cache events.
        config = replace(MachineConfig.default(), pipeline_model=model)
        program = assemble(STRAIGHT_LINE)
        empty = assemble(EMPTY_TASK)
        solo = run_program(program, config=config)
        simulator = Simulator(program, config=config)
        result = simulator.run_preemptive(
            [(solo.steps // 2, empty)])
        assert result.halted
        assert result.registers == solo.registers
        assert result.steps == solo.steps
        assert len(result.preemptions) == 1
        record = result.preemptions[0]
        assert record.cycles > 0
        assert result.cycles == solo.cycles + record.cycles
        assert result.task_cycles == solo.cycles
        assert result.task_fetch_misses == solo.fetch_misses
        assert result.task_data_misses == solo.data_misses

    def test_multiple_preemptions_and_past_halt_scheduling(self):
        program = assemble(STRAIGHT_LINE)
        empty = assemble(EMPTY_TASK)
        simulator = Simulator(program)
        result = simulator.run_preemptive(
            [(2, empty), (2, empty), (10 ** 9, empty)])
        # Both step-2 preemptions fire back to back; the one scheduled
        # past HALT never does.
        assert len(result.preemptions) == 2
        assert result.preemptions[0].step == result.preemptions[1].step
        solo = run_program(program)
        assert result.registers == solo.registers

    def test_preemptor_evictions_stay_within_crpd_budget(self):
        # 1-way D-cache: the preemptor's load of 0x8100 (line 2064,
        # set 0) evicts the victim's useful line 2048 when injected
        # between the victim's two loads — exactly one extra miss,
        # exactly the analyzed budget.
        data = "\n".join(f"w{i}: .word 0" for i in range(65))
        evictor_source = f"""
main:
    LDA R1, w64
    LDR R2, [R1]
    HALT
.data
{data}
"""
        config = replace(
            MachineConfig.default(),
            dcache=CacheConfig(num_sets=16, associativity=1,
                               line_size=16, miss_penalty=10))
        victim_prog, victim_fp = footprint(VICTIM_RELOAD, config)
        evictor_prog, evictor_fp = footprint(evictor_source, config)
        _, data_budget = crpd_extra_misses(victim_fp, evictor_fp)
        assert data_budget == 1
        solo = run_program(victim_prog, config=config)
        worst_extra = 0
        for step in range(solo.steps):
            simulator = Simulator(victim_prog, config=config)
            result = simulator.run_preemptive([(step, evictor_prog)])
            extra = result.task_data_misses - solo.data_misses
            assert extra <= data_budget
            worst_extra = max(worst_extra, extra)
        # The budget is tight: some injection point realises it.
        assert worst_extra == data_budget


class TestPreemptionChecker:
    def test_s7_violation_reported(self):
        program = assemble(STRAIGHT_LINE)
        empty = assemble(EMPTY_TASK)
        report = verify_preemption(program, empty, response_bound=1)
        assert not report.ok
        assert all(v.kind == "S7" for v in report.violations)

    def test_s8_violation_reported(self):
        solo = run_program(assemble(STRAIGHT_LINE))
        preempted = Simulator(assemble(STRAIGHT_LINE)).run_preemptive(
            [(2, assemble(EMPTY_TASK))])
        report = VerificationReport()
        # A negative budget is unsatisfiable: the checker must flag it
        # even though the run caused no extra misses.
        check_preempted_run(preempted, solo, response_bound=None,
                            fetch_miss_budget=-1, data_miss_budget=-1,
                            report=report)
        assert len(report.violations) == 2
        assert all(v.kind == "S8" for v in report.violations)

    def test_sound_pair_passes(self):
        program = assemble(STRAIGHT_LINE)
        empty = assemble(EMPTY_TASK)
        solo = run_program(program)
        report = verify_preemption(
            program, empty,
            response_bound=solo.cycles + 10_000,
            fetch_miss_budget=2, data_miss_budget=2)
        assert report.ok
        assert report.runs == 3


# ---------------------------------------------------------------------------
# End-to-end: the example task sets, S7/S8, and CRPD tightness.


@pytest.fixture(scope="module")
def analyzed_examples():
    cache = ArtifactCache()
    return {taskset.name: analyze_taskset(taskset, cache=cache)
            for taskset in example_tasksets()}


class TestExampleTaskSets:
    def test_schedulable_sets_are_schedulable(self, analyzed_examples):
        for name in ("ecu_mix", "sensor_fusion", "control_stack",
                     "threshold_group"):
            assert analyzed_examples[name].schedulable, name

    def test_overload_is_unschedulable_with_finite_iterations(
            self, analyzed_examples):
        result = analyzed_examples["overload"]
        assert not result.schedulable
        for response in result.responses:
            assert response.iterations <= 100

    def test_threshold_group_degenerates_to_wcet(self,
                                                 analyzed_examples):
        result = analyzed_examples["threshold_group"]
        for response in result.responses:
            assert response.response == response.wcet_cycles
            assert response.crpd == {}

    def test_crpd_strictly_tighter_than_naive_on_three_sets(
            self, analyzed_examples):
        # Acceptance criterion: RTA with CRPD beats the naive
        # full-cache-refill bound on at least 3 task sets.
        tighter_sets = 0
        for name in ("ecu_mix", "sensor_fusion", "control_stack"):
            result = analyzed_examples[name]
            preempted = [r for r in result.responses if r.crpd]
            assert preempted, name
            assert all(r.response <= r.naive_response
                       for r in preempted), name
            if any(r.response < r.naive_response for r in preempted):
                tighter_sets += 1
        assert tighter_sets >= 3

    def test_per_pair_crpd_never_exceeds_full_refill(
            self, analyzed_examples):
        for result in analyzed_examples.values():
            for response in result.responses:
                for cost in response.crpd.values():
                    assert 0 <= cost <= result.naive_crpd_cycles

    def test_s7_s8_hold_on_every_task_set(self, analyzed_examples):
        # Acceptance criterion: the preemptive-simulation oracle finds
        # no violation on any example task set.
        report = VerificationReport()
        for result in analyzed_examples.values():
            verify_taskset(result, report=report)
        assert report.ok, [str(v) for v in report.violations]
        assert report.runs > 0

    def test_wcets_dedup_through_the_shared_cache(self):
        cache = ArtifactCache()
        first = analyze_taskset(EXAMPLE_TASKSETS["ecu_mix"],
                                cache=cache)
        assert first.cache_misses > 0
        again = analyze_taskset(EXAMPLE_TASKSETS["ecu_mix"],
                                cache=cache)
        assert again.cache_misses == 0
        assert [r.response for r in again.responses] == \
            [r.response for r in first.responses]


# ---------------------------------------------------------------------------
# Sweeps and golden verdicts.


class TestSweep:
    def test_parse_geometry(self):
        config = parse_geometry("4x2x16")
        assert (config.num_sets, config.associativity,
                config.line_size) == (4, 2, 16)
        with pytest.raises(ValueError):
            parse_geometry("4x2")
        with pytest.raises(ValueError):
            parse_geometry("4x2xbig")

    def test_config_for_sets_both_caches(self):
        config = config_for("4x1x8")
        for cache in (config.icache, config.dcache):
            assert (cache.num_sets, cache.associativity,
                    cache.line_size) == (4, 1, 8)
        # Unrelated machine parameters survive.
        assert config.pipeline_model == \
            MachineConfig.default().pipeline_model

    def test_sweep_matches_golden_verdicts(self):
        # The overload cells of the checked-in golden file, recomputed
        # from the JSON fixture: verdicts must be bit-identical.
        taskset = load_taskset(
            os.path.join(TASKSETS_DIR, "overload.json"))
        rows = sweep_taskset(taskset, cache=ArtifactCache())
        assert len(rows) == len(ORDERINGS) * len(GEOMETRIES)
        problems = compare_with_golden(rows, load_golden(GOLDEN_PATH))
        assert problems == []

    def test_golden_roundtrip_and_mismatch_reporting(self, tmp_path):
        rows = [{
            "taskset": "s", "ordering": "given", "geometry": "4x2x16",
            "schedulable": True,
            "tasks": [{"task": "a", "response": 7}],
        }]
        path = tmp_path / "golden.json"
        save_golden(str(path), rows)
        golden = load_golden(str(path))
        assert compare_with_golden(rows, golden) == []
        flipped = json.loads(json.dumps(rows))
        flipped[0]["schedulable"] = False
        flipped[0]["tasks"][0]["response"] = None
        problems = compare_with_golden(flipped, golden)
        assert len(problems) == 2
        missing = compare_with_golden(
            [{**rows[0], "ordering": "reverse"}], golden)
        assert missing == ["s|reverse|4x2x16: no golden verdict"]

    def test_golden_file_covers_the_fixture_sweep(self):
        golden = load_golden(GOLDEN_PATH)
        for name in ("ecu_mix", "overload"):
            for ordering in ORDERINGS:
                for geometry in GEOMETRIES:
                    assert f"{name}|{ordering}|{geometry}" in golden
