"""Tests for the shared WTO fixpoint kernel.

Covers the weak topological ordering itself (including irreducible and
nested-loop graphs the natural-loop machinery cannot express), widening
placement at component heads, determinism of the instrumentation
counters, and old-solver vs new-kernel equivalence on the E2/E8
program families.
"""

import pytest

from repro.analysis import analyze_values
from repro.analysis.fixpoint import (FixpointKernel, FixpointSemantics,
                                     WTOComponent, WTOVertex,
                                     weak_topological_order)
from repro.cfg import build_cfg, expand_task
from repro.isa import assemble
from repro.lang import compile_program
from repro.workloads import get_workload


# -- Toy lattice for graph-shape tests ----------------------------------------
#
# Intervals over a single counter, with edges as plain (source, target,
# increment) triples.  Small enough to reason about exactly, unbounded
# enough to need widening.

TOP = (float("-inf"), float("inf"))


class CounterSemantics(FixpointSemantics):
    """State = interval of a counter; an edge adds its increment."""

    widening = True

    def __init__(self, edges):
        self.succs = {}
        for source, target, inc in edges:
            self.succs.setdefault(source, []).append(
                (source, target, inc))

    def successor_edges(self, node):
        return self.succs.get(node, [])

    def transfer(self, node, state):
        return state                    # nodes are pass-through

    def edge_state(self, edge, out):
        lo, hi = out
        inc = edge[2]
        return (lo + inc, hi + inc)

    def join(self, old, new):
        return (min(old[0], new[0]), max(old[1], new[1]))

    def widen(self, old, new):
        lo = old[0] if new[0] >= old[0] else float("-inf")
        hi = old[1] if new[1] <= old[1] else float("inf")
        return (lo, hi)

    def leq(self, a, b):
        return b[0] <= a[0] and a[1] <= b[1]

    def is_bottom(self, state):
        return False

    def copy(self, state):
        return state                    # tuples are immutable


def make_kernel(edges, entry, **kwargs):
    semantics = CounterSemantics(edges)
    return FixpointKernel(entry, semantics.successor_edges,
                          lambda e: e[1], semantics, sort_key=str,
                          predecessor_edges=None, **kwargs)


# -- Weak topological order ---------------------------------------------------


def _render(elements):
    parts = []
    for element in elements:
        if isinstance(element, WTOVertex):
            parts.append(str(element.node))
        else:
            parts.append("(" + " ".join(
                [str(element.head)] + [_render([e]) for e in
                                       element.elements]) + ")")
    return " ".join(parts)


class TestWeakTopologicalOrder:
    def test_bourdoncle_paper_example(self):
        # The example from Bourdoncle 1993, Fig. 1: expected WTO is
        # 1 2 (3 4 (5 6) 7) 8.
        succs = {1: [2], 2: [3, 8], 3: [4], 4: [5, 7], 5: [6],
                 6: [5, 7], 7: [3, 8], 8: []}
        wto = weak_topological_order(1, lambda n: succs[n],
                                     sort_key=lambda n: n)
        assert _render(wto.elements) == "1 2 (3 4 (5 6) 7) 8"
        assert wto.heads == {3, 5}
        assert wto.linear_order() == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_nested_loops(self):
        succs = {"e": ["h1"], "h1": ["h2", "x"], "h2": ["b", "h1"],
                 "b": ["h2"], "x": []}
        wto = weak_topological_order("e", lambda n: succs[n],
                                     sort_key=str)
        assert _render(wto.elements) == "e (h1 (h2 b)) x"
        assert wto.heads == {"h1", "h2"}

    def test_irreducible_graph_gets_single_component(self):
        # Cycle a<->b entered at both a and b: no natural-loop header
        # exists, but the WTO still wraps the cycle in one component.
        succs = {"e": ["a", "b"], "a": ["b", "x"], "b": ["a"], "x": []}
        wto = weak_topological_order("e", lambda n: succs[n],
                                     sort_key=str)
        components = [el for el in wto.elements
                      if isinstance(el, WTOComponent)]
        assert len(components) == 1
        body = {components[0].head} | {
            el.node for el in components[0].elements}
        assert body == {"a", "b"}

    def test_self_loop(self):
        succs = {"e": ["s"], "s": ["s", "x"], "x": []}
        wto = weak_topological_order("e", lambda n: succs[n],
                                     sort_key=str)
        assert wto.heads == {"s"}

    def test_for_every_edge_target_later_or_enclosing_head(self):
        # The defining WTO property, on a messy graph.
        succs = {1: [2, 5], 2: [3], 3: [2, 4], 4: [1, 6], 5: [6, 4],
                 6: [5]}
        wto = weak_topological_order(1, lambda n: succs[n],
                                     sort_key=lambda n: n)
        position = {n: i for i, n in enumerate(wto.linear_order())}

        def heads_containing(node, elements, chain):
            for element in elements:
                if isinstance(element, WTOVertex):
                    if element.node == node:
                        return chain
                else:
                    if element.head == node:
                        return chain + [element.head]
                    found = heads_containing(
                        node, element.elements, chain + [element.head])
                    if found is not None:
                        return found
            return None

        for source, targets in succs.items():
            enclosing = heads_containing(source, wto.elements, [])
            for target in targets:
                assert (position[source] < position[target]
                        or target in enclosing), (source, target)


# -- Kernel iteration on toy graphs -------------------------------------------


class TestKernelIteration:
    EDGES = [("e", "h", 0), ("h", "b", 1), ("b", "h", 0),
             ("h", "x", 0)]

    def test_simple_loop_with_widening_terminates(self):
        kernel = make_kernel(self.EDGES, "e", widen_delay=2)
        states = kernel.solve((0, 0))
        assert states["h"][1] == float("inf")   # widened upward
        assert states["h"][0] == 0
        assert kernel.stats.widenings >= 1

    def test_widen_delay_counts_joins_at_head(self):
        # With a huge delay the (unbounded) loop would iterate forever;
        # with delay 0 it widens on the first re-join.
        kernel = make_kernel(self.EDGES, "e", widen_delay=0)
        kernel.solve((0, 0))
        first_widen_visits = kernel.stats.widenings
        kernel2 = make_kernel(self.EDGES, "e", widen_delay=3)
        kernel2.solve((0, 0))
        assert kernel2.stats.joins > kernel.stats.joins
        assert kernel2.stats.widenings >= 1
        assert first_widen_visits >= 1

    def test_widening_only_at_component_heads(self):
        # Straight-line graph: no components, so no widenings even
        # though states change at every node.
        edges = [("a", "b", 1), ("b", "c", 1), ("c", "d", 1)]
        kernel = make_kernel(edges, "a", widen_delay=0)
        kernel.solve((0, 0))
        assert kernel.stats.wto_components == 0
        assert kernel.stats.widenings == 0

    def test_irreducible_graph_converges(self):
        edges = [("e", "a", 0), ("e", "b", 5), ("a", "b", 1),
                 ("b", "a", 1), ("a", "x", 0)]
        kernel = make_kernel(edges, "e", widen_delay=1)
        states = kernel.solve((0, 0))
        assert "x" in states
        # Sound: both cycle nodes cover the initial arrivals.
        assert states["a"][0] <= 0 and states["b"][1] >= 5

    def test_nested_loop_stabilises_inner_before_outer(self):
        # Inner loop (h2,b) nested in (h1 ...); bounded increments via
        # widening make both converge; the inner component must be
        # iterated at least once per outer iteration.
        edges = [("e", "h1", 0), ("h1", "h2", 0), ("h2", "b", 1),
                 ("b", "h2", 0), ("h2", "h1", 0), ("h1", "x", 0)]
        kernel = make_kernel(edges, "e", widen_delay=1)
        states = kernel.solve((0, 0))
        assert states["x"][1] == float("inf")
        assert kernel.stats.component_iterations >= 4


# -- Equivalence with the legacy FIFO solver ----------------------------------

# The E8 loop-pattern corpus (benchmarks/test_e8_loop_bounds.py).
E8_SOURCES = {
    "count_up": """
int r; void main() { int i; int n = 0;
for (i = 0; i < 40; i = i + 1) { n = n + i; } r = n; }""",
    "count_down": """
int r; void main() { int i = 40; int n = 0;
while (i > 0) { n = n + i; i = i - 1; } r = n; }""",
    "stepped": """
int r; void main() { int i; int n = 0;
for (i = 0; i < 40; i = i + 3) { n = n + 1; } r = n; }""",
    "doubling": """
int r; void main() { int i = 1; int n = 0;
while (i < 256) { i = i << 1; n = n + 1; } r = n; }""",
    "nested": """
int r; void main() { int i; int j; int n = 0;
for (i = 0; i < 10; i = i + 1) {
    for (j = 0; j < 5; j = j + 1) { n = n + 1; } }
r = n; }""",
}

# Representative E2 kernels (benchmarks/test_e2_value_precision.py).
E2_KERNELS = ("fibcall", "insertsort", "bs", "crc")


def _states_identical(a, b):
    return a.states_equal(b)


class TestSolverEquivalence:
    @pytest.mark.parametrize("name", sorted(E8_SOURCES))
    def test_e8_programs(self, name):
        graph = expand_task(build_cfg(compile_program(E8_SOURCES[name])))
        fifo = analyze_values(graph, strategy="fifo")
        wto = analyze_values(graph, strategy="wto")
        assert _states_identical(fifo.fixpoint, wto.fixpoint)
        assert wto.fixpoint.stats.transfers \
            <= fifo.fixpoint.stats.transfers

    @pytest.mark.parametrize("name", E2_KERNELS)
    def test_e2_kernels(self, name):
        workload = get_workload(name)
        graph = expand_task(build_cfg(workload.compile()))
        fifo = analyze_values(graph, strategy="fifo")
        wto = analyze_values(graph, strategy="wto")
        assert _states_identical(fifo.fixpoint, wto.fixpoint)
        assert wto.fixpoint.stats.transfers \
            <= fifo.fixpoint.stats.transfers


# -- Determinism --------------------------------------------------------------


class TestDeterminism:
    SOURCE = """
int data[16]; int r;
int f(int seed) {
    int i; int acc = seed;
    for (i = 0; i < 16; i = i + 1) { acc = acc + data[i]; }
    return acc;
}
void main() { int i;
for (i = 0; i < 16; i = i + 1) { data[i] = i; }
r = f(3) + f(7); }"""

    def _counters(self):
        graph = expand_task(build_cfg(compile_program(self.SOURCE)))
        values = analyze_values(graph)
        return values.fixpoint.stats.as_dict()

    def test_counters_reproducible_across_runs(self):
        first = self._counters()
        second = self._counters()
        assert first == second
        assert first["transfers"] > 0 and first["widenings"] > 0

    def test_wto_reproducible(self):
        graph = expand_task(build_cfg(compile_program(self.SOURCE)))
        succs = graph.adjacency()
        a = weak_topological_order(graph.entry, lambda n: succs[n],
                                   graph.node_key)
        b = weak_topological_order(graph.entry, lambda n: succs[n],
                                   graph.node_key)
        assert a.elements == b.elements
        assert a.linear_order() == b.linear_order()


# -- WTO heads vs natural-loop headers ----------------------------------------


def test_wto_heads_match_natural_loop_headers_on_reducible_graph():
    from repro.cfg.loops import find_loops
    source = TestDeterminism.SOURCE
    graph = expand_task(build_cfg(compile_program(source)))
    succs = graph.adjacency()
    wto = weak_topological_order(graph.entry, lambda n: succs[n],
                                 graph.node_key)
    forest = find_loops(graph.entry, succs)
    assert wto.heads == forest.headers()


# -- Cache analysis runs on the shared kernel ---------------------------------


def test_cache_fixpoint_reports_kernel_stats():
    from repro.cache.analysis import analyze_icache
    from repro.cache.config import MachineConfig
    graph = expand_task(build_cfg(compile_program(
        TestDeterminism.SOURCE)))
    result = analyze_icache(graph, MachineConfig.default().icache)
    assert result.fixpoint_stats is not None
    assert result.fixpoint_stats.transfers > 0
    # Finite lattice: the kernel must not widen.
    assert result.fixpoint_stats.widenings == 0
