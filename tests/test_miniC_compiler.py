"""Tests for the mini-C compiler: compiled programs must execute
correctly on the simulator and remain analysable."""

import pytest

from repro.lang import CodegenError, ParseError, compile_program, parse
from repro.sim import run_program
from repro.wcet import analyze_wcet


def run_main(source, arguments=None, **kwargs):
    program = compile_program(source)
    return run_program(program, arguments=arguments, **kwargs)


class TestParser:
    def test_function_structure(self):
        unit = parse("""
        int add(int a, int b) { return a + b; }
        void main() { }
        """)
        assert [f.name for f in unit.functions] == ["add", "main"]
        assert len(unit.function("add").parameters) == 2
        assert not unit.function("main").returns_value

    def test_globals(self):
        unit = parse("""
        int x;
        int y = 5;
        int table[4] = {1, 2, 3};
        void main() { }
        """)
        assert len(unit.globals) == 3
        assert unit.globals[1].initializer == [5]
        assert unit.globals[2].array_size == 4

    def test_precedence(self):
        unit = parse("void main() { int x; x = 1 + 2 * 3; }")
        assign = unit.function("main").body[1]
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse("void main() { int; }")
        with pytest.raises(ParseError):
            parse("void main() { 1 = 2; }")
        with pytest.raises(ParseError):
            parse("int f(int a, int b, int c, int d, int e) { return 0; } "
                  "void main() { }")


class TestExecution:
    def test_arithmetic(self):
        result = run_main("""
        int r;
        void main() {
            r = (2 + 3) * 4 - 1;
        }
        """)
        # r is a global; read it back from memory.
        program = compile_program("""
        int r;
        void main() { r = (2 + 3) * 4 - 1; }
        """)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        address = program.symbols["g_r"]
        assert simulator.memory[address] == 19

    def test_function_call_result(self):
        source = """
        int square(int x) { return x * x; }
        int r;
        void main() { r = square(7); }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 49

    def test_recursion_free_fib(self):
        source = """
        int r;
        void main() {
            int a = 0;
            int b = 1;
            int i;
            for (i = 0; i < 10; i = i + 1) {
                int t = a + b;
                a = b;
                b = t;
            }
            r = a;
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 55

    def test_arrays_and_loops(self):
        source = """
        int data[8];
        int sum;
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) {
                data[i] = i * i;
            }
            sum = 0;
            for (i = 0; i < 8; i = i + 1) {
                sum = sum + data[i];
            }
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_sum"]] == \
            sum(i * i for i in range(8))

    def test_local_arrays(self):
        source = """
        int r;
        void main() {
            int buf[4];
            int i;
            for (i = 0; i < 4; i = i + 1) { buf[i] = i + 10; }
            r = buf[0] + buf[3];
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 23

    def test_if_else_chains(self):
        source = """
        int classify(int x) {
            if (x < 0) { return 0 - 1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        int r1; int r2; int r3;
        void main() {
            r1 = classify(0 - 5);
            r2 = classify(0);
            r3 = classify(9);
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r1"]] == 0xFFFFFFFF
        assert simulator.memory[program.symbols["g_r2"]] == 0
        assert simulator.memory[program.symbols["g_r3"]] == 1

    def test_logical_operators_short_circuit(self):
        source = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        int r;
        void main() {
            calls = 0;
            if (0 && bump()) { r = 1; } else { r = 2; }
            if (1 || bump()) { r = r + 10; }
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_calls"]] == 0
        assert simulator.memory[program.symbols["g_r"]] == 12

    def test_while_and_do_while(self):
        source = """
        int r;
        void main() {
            int i = 0;
            int n = 0;
            while (i < 5) { n = n + 2; i = i + 1; }
            do { n = n + 1; i = i - 1; } while (i > 0);
            r = n;
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 15

    def test_break_continue(self):
        source = """
        int r;
        void main() {
            int i;
            int n = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 7) { break; }
                n = n + i;
            }
            r = n;
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 0 + 1 + 2 + 4 + 5 + 6

    def test_nested_calls_with_temps(self):
        source = """
        int add(int a, int b) { return a + b; }
        int r;
        void main() {
            r = add(add(1, 2), add(3, add(4, 5)));
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 15

    def test_deep_expression_spills(self):
        # Deep right-leaning expression forces temp spilling.
        source = """
        int r;
        void main() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            int e = 5; int f = 6; int g = 7;
            r = a + (b * (c + (d * (e + (f * g)))));
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        expected = 1 + (2 * (3 + (4 * (5 + (6 * 7)))))
        assert simulator.memory[program.symbols["g_r"]] == expected

    def test_shifts_and_bitops(self):
        source = """
        int r;
        void main() {
            r = ((0xF0 >> 4) | (1 << 8)) ^ 0xFF & 0x0F;
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        expected = ((0xF0 >> 4) | (1 << 8)) ^ 0xFF & 0x0F
        assert simulator.memory[program.symbols["g_r"]] == expected

    def test_boolean_value_materialisation(self):
        source = """
        int r;
        void main() {
            int a = 5;
            r = (a > 3) + (a < 3) * 10;
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 1

    def test_many_locals_spill_to_stack(self):
        # More scalars than variable registers.
        source = """
        int r;
        void main() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            int e = 5; int f = 6; int g = 7; int h = 8;
            int i = 9;
            r = a + b + c + d + e + f + g + h + i;
        }
        """
        program = compile_program(source)
        from repro.sim import Simulator
        simulator = Simulator(program)
        simulator.run()
        assert simulator.memory[program.symbols["g_r"]] == 45


class TestCodegenErrors:
    def test_undefined_variable(self):
        with pytest.raises(CodegenError):
            compile_program("void main() { x = 1; }")

    def test_undefined_function(self):
        with pytest.raises(CodegenError):
            compile_program("void main() { frob(); }")

    def test_missing_main(self):
        with pytest.raises(CodegenError):
            compile_program("int f() { return 1; }")

    def test_division_unsupported(self):
        from repro.lang import LexerError
        with pytest.raises((CodegenError, ParseError, LexerError)):
            compile_program("int r; void main() { r = 6 / 2; }")

    def test_break_outside_loop(self):
        with pytest.raises(CodegenError):
            compile_program("void main() { break; }")


class TestCompiledProgramsAreAnalysable:
    def test_wcet_of_compiled_loop(self):
        source = """
        int acc;
        void main() {
            int i;
            acc = 0;
            for (i = 0; i < 12; i = i + 1) {
                acc = acc + i;
            }
        }
        """
        program = compile_program(source)
        result = analyze_wcet(program)
        execution = run_program(program)
        assert result.wcet_cycles >= execution.cycles
        assert result.wcet_cycles <= execution.cycles * 1.35

    def test_compiled_loop_bounds_are_affine(self):
        source = """
        int a[10];
        void main() {
            int i;
            for (i = 0; i < 10; i = i + 1) { a[i] = i; }
        }
        """
        program = compile_program(source)
        result = analyze_wcet(program)
        methods = {b.method for b in result.loop_bounds.values()}
        assert methods == {"affine"}
        bounds = {b.max_iterations for b in result.loop_bounds.values()}
        assert bounds == {10}

    def test_compiled_nest_analysable(self):
        source = """
        int m[16];
        void main() {
            int i; int j;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    m[i * 4 + j] = i + j;
                }
            }
        }
        """
        program = compile_program(source)
        result = analyze_wcet(program)
        execution = run_program(program)
        assert result.wcet_cycles >= execution.cycles
        assert all(b.is_bounded for b in result.loop_bounds.values())
