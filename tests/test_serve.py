"""Tests for ``repro serve``: the analysis service, its HTTP surface,
and the function-grained slice keys that make re-analysis incremental."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.batch.cachestore import ArtifactCache
from repro.isa import TEXT_BASE, assemble
from repro.lang import compile_program
from repro.serve import (AnalysisRequest, AnalysisServer, AnalysisService,
                         ValidationError, analyze)
from repro.wcet import analyze_wcet
from repro.wcet.ait import PHASES


# ---------------------------------------------------------------------------
# Workload sources.  BASE carries a function main never calls, so editing
# it must not invalidate any cached phase; LOOP reads its trip count from
# a global, so editing only the initializer invalidates the value chain
# but not CFG reconstruction.

BASE = """
int result;

int spare(int x) {
    return x + 1;
}

int scale(int x) {
    int i;
    int acc = 0;
    for (i = 0; i < 8; i = i + 1) {
        acc = acc + x;
    }
    return acc;
}

void main() {
    result = scale(5);
}
"""

#: BASE with only the unreachable function's body changed.
BASE_SPARE_EDIT = BASE.replace("return x + 1;", "return x + 2;")

#: BASE with the reachable loop body changed.
BASE_SCALE_EDIT = BASE.replace("acc = acc + x;", "acc = acc + x + 1;")

LOOP = """
int limit = 8;
int result;

void main() {
    int i;
    int acc = 0;
    for (i = 0; i < limit; i = i + 1) {
        acc = acc + i;
    }
    result = acc;
}
"""

#: LOOP with only the data initializer changed (identical code bytes).
LOOP_DATA_EDIT = LOOP.replace("int limit = 8;", "int limit = 6;")


def cold_bounds(source):
    result = analyze_wcet(compile_program(source))
    return result.wcet_cycles, result.path.lp_bound


# ---------------------------------------------------------------------------
# Per-function digest vector and reachable slices.


class TestProgramSlices:
    def test_text_is_carved_at_function_symbols(self):
        program = compile_program(BASE)
        slices = sorted(program.function_slices(), key=lambda f: f.start)
        assert {fn.name for fn in slices} >= {"main", "scale", "spare"}
        # The carving tiles .text: contiguous, gap-free regions.
        text = program.text
        assert slices[0].start == text.base
        assert slices[-1].end == text.end
        for left, right in zip(slices, slices[1:]):
            assert left.end == right.start

    def test_reachable_slice_excludes_uncalled_functions(self):
        program = compile_program(BASE)
        sliced = program.reachable_slice()
        assert not sliced.conservative
        assert "spare" not in sliced.functions
        assert {"main", "scale"} <= set(sliced.functions)

    def test_unreachable_edit_keeps_both_digests(self):
        base = compile_program(BASE)
        edited = compile_program(BASE_SPARE_EDIT)
        assert base.content_digest() != edited.content_digest()
        assert base.reachable_slice().code == edited.reachable_slice().code
        assert base.reachable_slice().data == edited.reachable_slice().data

    def test_reachable_edit_changes_the_code_digest(self):
        base = compile_program(BASE)
        edited = compile_program(BASE_SCALE_EDIT)
        assert base.reachable_slice().code != edited.reachable_slice().code

    def test_data_edit_changes_only_the_data_digest(self):
        base = compile_program(LOOP)
        edited = compile_program(LOOP_DATA_EDIT)
        assert base.reachable_slice().code == edited.reachable_slice().code
        assert base.reachable_slice().data != edited.reachable_slice().data

    def test_unannotated_indirect_branch_degrades_to_conservative(self):
        source = """
        main:
            MOVI R1, #0x1000
            BLR R1
            HALT
        """
        program = assemble(source)
        sliced = program.reachable_slice()
        assert sliced.conservative
        # Annotating the site restores precise slicing.
        annotated = program.reachable_slice(
            indirect_targets={TEXT_BASE + 4: [TEXT_BASE]})
        assert not annotated.conservative
        assert annotated.functions == ("main",)

    def test_conservative_slice_still_tracks_content(self):
        one = assemble("main:\n    MOVI R1, #0x1000\n    BLR R1\n    HALT\n")
        two = assemble("main:\n    MOVI R1, #0x1004\n    BLR R1\n    HALT\n")
        assert one.reachable_slice().conservative
        assert one.reachable_slice().code != two.reachable_slice().code


# ---------------------------------------------------------------------------
# Service-level incremental re-analysis (no HTTP in between).


def finish(service, job_id, timeout=180.0):
    deadline = time.monotonic() + timeout
    while True:
        record = service.job(job_id)
        if record["status"] in ("done", "error"):
            assert record["status"] == "done", record.get("error")
            return record
        assert time.monotonic() < deadline, f"job {job_id} stuck"
        time.sleep(0.01)


def run(service, payload):
    return finish(service, service.submit(payload))


def events(record):
    (row,) = record["rows"]
    return row["cache"]["events"]


def bounds(record):
    (row,) = record["rows"]
    return row["wcet_cycles"], row["lp_bound"]


class TestIncrementalService:
    @pytest.fixture
    def service(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=2)
        yield service
        service.close()

    def test_warm_server_per_phase_provenance(self, service):
        # Cold: every phase computes.
        cold = run(service, {"source": BASE})
        assert events(cold) == {phase: "miss" for phase in PHASES}
        assert bounds(cold) == cold_bounds(BASE)

        # Identical resubmission: every phase hits.
        warm = run(service, {"source": BASE})
        assert events(warm) == {phase: "hit" for phase in PHASES}
        assert bounds(warm) == bounds(cold)

        # Editing a function main never reaches changes the binary but
        # no slice digest: still a full hit, identical bounds.
        spare = run(service, {"source": BASE_SPARE_EDIT})
        assert events(spare) == {phase: "hit" for phase in PHASES}
        assert bounds(spare) == bounds(cold)

        # Editing the reachable loop recomputes everything.
        scale = run(service, {"source": BASE_SCALE_EDIT})
        assert events(scale) == {phase: "miss" for phase in PHASES}
        assert bounds(scale) == cold_bounds(BASE_SCALE_EDIT)

    def test_data_only_edit_reruns_only_the_value_chain(self, service):
        cold = run(service, {"source": LOOP})
        assert events(cold) == {phase: "miss" for phase in PHASES}

        edited = run(service, {"source": LOOP_DATA_EDIT})
        assert events(edited) == {
            "cfg": "hit", "icache": "hit",
            "value": "miss", "loopbounds": "miss", "dcache": "miss",
            "pipeline": "miss", "path": "miss"}
        # The fresh bound is real: bit-identical to a cold analysis and
        # different from the old trip count's bound.
        assert bounds(edited) == cold_bounds(LOOP_DATA_EDIT)
        assert bounds(edited) != bounds(cold)

    def test_models_share_model_independent_phases(self, service):
        record = run(service, {"source": BASE,
                               "models": ["additive", "krisc5"]})
        additive, krisc5 = record["rows"]
        assert additive["cache"]["events"] == {
            phase: "miss" for phase in PHASES}
        # The second model recomputes only pipeline and path.
        assert krisc5["cache"]["events"] == {
            "cfg": "hit", "value": "hit", "loopbounds": "hit",
            "icache": "hit", "dcache": "hit",
            "pipeline": "miss", "path": "miss"}

    def test_stats_report_jobs_and_memo(self, service):
        run(service, {"source": BASE})
        stats = service.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["cache"]["misses"] == len(PHASES)
        memo = stats["cache"]["memo"]
        assert memo["entries"] == len(PHASES)
        assert memo["bytes"] > 0
        assert memo["evictions"] == 0

    def test_bounded_memo_evicts_under_service_load(self, tmp_path):
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=1, memo_entries=3)
        try:
            run(service, {"source": BASE})
            memo = service.stats()["cache"]["memo"]
            assert memo["entries"] <= 3
            assert memo["evictions"] >= len(PHASES) - 3
            # Evicted artifacts reload from disk: a warm resubmission
            # is still a full hit.
            warm = run(service, {"source": BASE})
            assert events(warm) == {phase: "hit" for phase in PHASES}
        finally:
            service.close()

    def test_malformed_requests_are_rejected_eagerly(self, service):
        for payload in ([1, 2], {}, {"source": BASE, "assembly": "NOP"},
                        {"source": "   "}, {"source": BASE, "bogus": 1},
                        {"source": BASE, "policies": ["frob"]},
                        {"source": BASE, "models": ["warp-drive"]},
                        {"source": BASE, "loop_bounds": [4096]},
                        {"source": BASE, "register_ranges": {"R0": [1]}},
                        {"source": BASE, "label": ""}):
            with pytest.raises(ValidationError):
                service.submit(payload)
        assert service.stats()["jobs"]["total"] == 0

    def test_request_defaults_and_dedup(self):
        request = AnalysisRequest({
            "source": BASE,
            "policies": ["full", "full", "vivu"],
            "models": "krisc5",
            "loop_bounds": {"0x1000": "8"},
            "register_ranges": {"R3": [0, 100]},
        })
        assert request.policies == ["full", "vivu"]
        assert request.models == ["krisc5"]
        assert request.loop_bounds == {0x1000: 8}
        assert request.register_ranges == {3: (0, 100)}
        assert request.label == "request"

    def test_compile_errors_surface_as_job_errors(self, service):
        job_id = service.submit({"source": "void main() { x = 1; }"})
        deadline = time.monotonic() + 60
        while True:
            record = service.job(job_id)
            if record["status"] in ("done", "error"):
                break
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert record["status"] == "error"
        assert "x" in record["error"]


# ---------------------------------------------------------------------------
# Bounded in-memory memo (LRU) on the artifact cache itself.


class TestMemoBounds:
    def test_entry_bound_evicts_oldest_first(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), memo_entries=3)
        for i in range(5):
            cache.store(f"key-{i}", {"value": i})
        stats = cache.memo_stats()
        assert stats["entries"] == 3
        assert stats["limit_entries"] == 3
        assert cache.memo_evictions == 2
        # Evicted entries are still on disk and reload transparently.
        hit, value = cache.lookup("key-0")
        assert hit and value == {"value": 0}

    def test_lookup_refreshes_recency(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), memo_entries=2)
        cache.store("old", {"value": "old"})
        cache.store("new", {"value": "new"})
        cache.lookup("old")         # touch: "new" is now the LRU entry
        cache.store("newest", {"value": "newest"})
        assert set(cache._memory) == {"old", "newest"}

    def test_byte_bound_evicts_by_size(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), memo_bytes=4096)
        for i in range(8):
            cache.store(f"blob-{i}", b"x" * 2048)
        stats = cache.memo_stats()
        assert stats["bytes"] <= 4096
        assert stats["entries"] < 8
        assert cache.memo_evictions > 0

    def test_oversized_entry_is_never_self_evicted(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), memo_bytes=16)
        cache.store("huge", b"y" * 4096)
        # The just-stored value stays memoised even though it exceeds
        # the byte budget on its own.
        assert set(cache._memory) == {"huge"}

    def test_unbounded_when_limits_are_none(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), memo_entries=None,
                              memo_bytes=None)
        for i in range(64):
            cache.store(f"key-{i}", i)
        assert cache.memo_stats()["entries"] == 64
        assert cache.memo_evictions == 0


# ---------------------------------------------------------------------------
# HTTP surface: concurrency, bit-identity, and error codes.


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-cache")
    service = AnalysisService(cache_dir=str(root), workers=4)
    httpd = AnalysisServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.close()
    thread.join(timeout=10)


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_each_phase_once(
            self, tmp_path):
        # Regression: two simultaneous identical /analyze requests used
        # to compute every phase twice — dedup only happened through
        # the artifact store after completion.  The in-flight single-
        # flight latch makes the second request block on the first's
        # task, whichever order the pool schedules them in.
        service = AnalysisService(cache_dir=str(tmp_path / "cache"),
                                  workers=2)
        try:
            first = service.submit({"source": BASE})
            second = service.submit({"source": BASE})
            records = [finish(service, first), finish(service, second)]
            per_phase = {phase: sorted(events(record)[phase]
                                       for record in records)
                         for phase in PHASES}
            # Exactly one computation per phase across BOTH jobs.
            assert per_phase == {phase: ["hit", "miss"]
                                 for phase in PHASES}
            # The shared cache saw exactly one miss per phase ...
            assert service.stats()["cache"]["misses"] == len(PHASES)
            # ... and both jobs' bounds are bit-identical to a cold,
            # uncached analysis.
            for record in records:
                assert bounds(record) == cold_bounds(BASE)
        finally:
            service.close()


def http_status(url, path, method="GET", body=None):
    request = urllib.request.Request(url + path, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            reply.read()
            return reply.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


class TestHTTP:
    def test_eight_concurrent_clients_bit_identical(self, server):
        expected = cold_bounds(BASE)
        records = [None] * 8
        errors = []

        def client(index):
            try:
                records[index] = analyze(server, {
                    "source": BASE, "label": f"client-{index}"})
            except Exception as exc:   # surfaces in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(len(records))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        for record in records:
            assert record is not None
            assert bounds(record) == expected

    def test_submit_returns_202_and_poll_404s_unknown_jobs(self, server):
        body = json.dumps({"source": BASE}).encode()
        request = urllib.request.Request(
            server + "/analyze", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as reply:
            assert reply.status == 202
            issued = json.loads(reply.read())
        assert issued["job"] == f"/jobs/{issued['id']}"
        assert http_status(server, "/jobs/job-999999") == 404

    @pytest.mark.parametrize("body", [
        b"not json at all",
        b"[1, 2, 3]",
        b'{"assembly": "NOP", "source": "int x;"}',
        b'{"source": ""}',
        b'{"source": "void main() { }", "frobnicate": true}',
        b'{"source": "void main() { }", "models": ["warp-drive"]}',
        b'{"source": "void main() { }", "loop_bounds": "nope"}',
    ])
    def test_malformed_posts_return_400(self, server, body):
        assert http_status(server, "/analyze", "POST", body) == 400

    def test_empty_body_returns_400(self, server):
        assert http_status(server, "/analyze", "POST", b"") == 400

    def test_unknown_routes_return_404(self, server):
        assert http_status(server, "/bogus") == 404
        assert http_status(server, "/bogus", "POST", b"{}") == 404

    def test_write_methods_return_405(self, server):
        assert http_status(server, "/analyze", "PUT", b"{}") == 405
        assert http_status(server, "/jobs/job-1", "PATCH", b"{}") == 405

    def test_delete_routes(self, server):
        # DELETE is cancellation: unknown jobs 404, other paths 404.
        assert http_status(server, "/jobs/job-999999", "DELETE") == 404
        assert http_status(server, "/analyze", "DELETE") == 404

    def test_stats_expose_cache_counters(self, server):
        analyze(server, {"source": BASE, "label": "stats-probe"})
        request = urllib.request.Request(server + "/stats")
        with urllib.request.urlopen(request, timeout=30) as reply:
            stats = json.loads(reply.read())
        assert stats["jobs"]["done"] >= 1
        assert stats["cache"]["hits"] + stats["cache"]["misses"] > 0
        assert stats["cache"]["memo"]["entries"] > 0
