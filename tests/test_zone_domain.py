"""Unit and property tests for the zone (DBM) relational domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.zone import INF, Zone

N = 3   # variables per test zone


class TestConstraints:
    def test_plain_bounds(self):
        zone = Zone.top(N).add_upper(0, 10).add_lower(0, 2)
        assert zone.bounds(0) == (2, 10)

    def test_difference_constraint(self):
        zone = Zone.top(N).add_difference(0, 1, 5)   # x - y <= 5
        assert zone.difference_bounds(0, 1)[1] == 5

    def test_transitive_closure(self):
        # x <= y + 2, y <= 7  ==>  x <= 9.
        zone = Zone.top(N).add_difference(0, 1, 2).add_upper(1, 7)
        assert zone.bounds(0)[1] == 9

    def test_inconsistency_is_bottom(self):
        zone = Zone.top(N).add_upper(0, 3).add_lower(0, 5)
        assert zone.is_bottom()

    def test_cycle_inconsistency(self):
        # x - y <= -1 and y - x <= -1 is unsatisfiable.
        zone = Zone.top(N).add_difference(0, 1, -1) \
            .add_difference(1, 0, -1)
        assert zone.is_bottom()

    def test_equality_via_two_differences(self):
        zone = Zone.top(N).add_difference(0, 1, 0) \
            .add_difference(1, 0, 0).add_upper(1, 4).add_lower(1, 4)
        assert zone.bounds(0) == (4, 4)


class TestAssignments:
    def test_assign_constant(self):
        zone = Zone.top(N).assign_constant(1, 42)
        assert zone.bounds(1) == (42, 42)

    def test_assign_sum_tracks_relation(self):
        zone = Zone.top(N).add_upper(0, 10).add_lower(0, 0)
        zone = zone.assign_sum(1, 0, 3)   # y := x + 3
        assert zone.bounds(1) == (3, 13)
        assert zone.difference_bounds(1, 0) == (3, 3)

    def test_shift_preserves_relations(self):
        zone = Zone.top(N).assign_constant(0, 5).assign_sum(1, 0, 2)
        zone = zone.shift(0, 10)   # x := x + 10
        assert zone.bounds(0) == (15, 15)
        # y unchanged, difference updated.
        assert zone.bounds(1) == (7, 7)

    def test_forget_erases_only_target(self):
        zone = Zone.top(N).assign_constant(0, 5).assign_constant(1, 6)
        zone = zone.forget(0)
        assert zone.bounds(0) == (-INF, INF)
        assert zone.bounds(1) == (6, 6)


class TestLattice:
    def test_join_is_hull(self):
        a = Zone.top(N).assign_constant(0, 1)
        b = Zone.top(N).assign_constant(0, 5)
        joined = a.join(b)
        assert joined.bounds(0) == (1, 5)

    def test_join_keeps_common_relations(self):
        a = Zone.top(N).add_upper(0, 5).add_difference(0, 1, 0)
        b = Zone.top(N).add_upper(0, 9).add_difference(0, 1, 0)
        joined = a.join(b)
        assert joined.bounds(0)[1] == 9
        assert joined.difference_bounds(0, 1)[1] == 0

    def test_meet(self):
        a = Zone.top(N).add_upper(0, 5)
        b = Zone.top(N).add_lower(0, 3)
        met = a.meet(b)
        assert met.bounds(0) == (3, 5)

    def test_widening_stabilises(self):
        zone = Zone.top(N).assign_constant(0, 0)
        for step in range(50):
            grown = Zone.top(N).add_lower(0, 0).add_upper(0, step + 1)
            widened = zone.widen(grown)
            if widened.leq(zone) and zone.leq(widened):
                break
            zone = widened
        assert zone.bounds(0) == (0, INF)

    def test_leq(self):
        small = Zone.top(N).add_upper(0, 3).add_lower(0, 1)
        big = Zone.top(N).add_upper(0, 10)
        assert small.leq(big)
        assert not big.leq(small)
        assert Zone.bottom(N).leq(small)


@st.composite
def valuations(draw):
    return [draw(st.integers(-20, 20)) for _ in range(N)]


@st.composite
def zones(draw):
    zone = Zone.top(N)
    for _ in range(draw(st.integers(0, 5))):
        kind = draw(st.integers(0, 2))
        x = draw(st.integers(0, N - 1))
        c = draw(st.integers(-15, 15))
        if kind == 0:
            zone = zone.add_upper(x, c)
        elif kind == 1:
            zone = zone.add_lower(x, c)
        else:
            y = draw(st.integers(0, N - 1))
            if x != y:
                zone = zone.add_difference(x, y, c)
    return zone


class TestSoundnessProperties:
    @given(zones(), zones(), valuations())
    @settings(max_examples=300)
    def test_join_soundness(self, a, b, values):
        if a.satisfies(values) or b.satisfies(values):
            assert a.join(b).satisfies(values)

    @given(zones(), zones(), valuations())
    @settings(max_examples=300)
    def test_meet_soundness(self, a, b, values):
        if a.satisfies(values) and b.satisfies(values):
            assert a.meet(b).satisfies(values)

    @given(zones(), zones(), valuations())
    @settings(max_examples=200)
    def test_widen_is_upper_bound(self, a, b, values):
        widened = a.widen(b)
        if a.satisfies(values) or b.satisfies(values):
            assert widened.satisfies(values)

    @given(zones(), valuations(), st.integers(0, N - 1),
           st.integers(-10, 10))
    @settings(max_examples=200)
    def test_shift_soundness(self, zone, values, x, c):
        if not zone.satisfies(values):
            return
        shifted_values = list(values)
        shifted_values[x] += c
        assert zone.shift(x, c).satisfies(shifted_values)

    @given(zones(), valuations(), st.integers(0, N - 1),
           st.integers(0, N - 1), st.integers(-10, 10))
    @settings(max_examples=200)
    def test_assign_sum_soundness(self, zone, values, x, y, c):
        if not zone.satisfies(values):
            return
        new_values = list(values)
        new_values[x] = values[y] + c
        assert zone.assign_sum(x, y, c).satisfies(new_values)

    @given(zones(), valuations())
    @settings(max_examples=200)
    def test_closure_preserves_concretisation(self, zone, values):
        assert zone.satisfies(values) == zone.close().satisfies(values)
